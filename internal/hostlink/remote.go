package hostlink

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// remote is one attached agent connection's bookkeeping. Everything here
// is wall-clock state: it feeds the /agents status document and the
// end-of-run barrier, never the simulation or the run report.
type remote struct {
	agent int
	conn  net.Conn
	addr  string
	apply bool

	// done is closed when the connection is torn down (reader error,
	// replacement, Close).
	done chan struct{}

	// wmu serializes frame writes: the writer goroutine streams frames,
	// the reader goroutine answers Applied with Commit, and Close says
	// goodbye — interleaved writes would corrupt the stream.
	wmu  sync.Mutex
	cbuf []byte // commit scratch, guarded by wmu

	// streams[shard] is the delivery state of one shard this connection
	// serves: its own shard plus any it adopted after a rebalance. The
	// map and the ack/propose fields are guarded by fo.mu; cursor and
	// chain belong to the writer goroutine.
	streams map[int]*stream

	lastSeen  time.Time
	helloUsed bool
	gone      bool
	ladder    *remoteLadder
}

// stream is one shard's delivery state on one connection.
type stream struct {
	shard int

	// Writer-owned: the replay cursor, its digest chain, and whether the
	// Hello-resumed cursor was validated against the digest ring.
	cursor    uint64
	chain     uint64
	validated bool
	// announced is the remote-ownership epoch last announced with a
	// Reassign frame (own-shard streams never announce).
	announced uint64
	epoch     uint64

	// Guarded by fo.mu.
	acked          uint64
	ackDigest      uint64
	sent           uint64
	proposed       uint64
	resolved       uint64
	snapshots      int
	replays        int
	collapsed      int
	digestMismatch int
	applies        int
	attempts       int
	retried        int
	forceSnap      bool
}

// remoteLadder tracks a remote follower's backlog rung — the wall-clock
// twin of the loopback shard's supervise.Follower. When a remote falls
// past the coalesce rung the writer collapses its backlog into a single
// snapshot instead of replaying every retained generation.
type remoteLadder struct {
	coalesceLag int
}

// RemoteStatus describes one attached agent connection for the /agents
// document. The cursor fields are the agent's own shard stream; Owns
// lists every shard the connection currently serves (its own plus any
// adopted after a rebalance).
type RemoteStatus struct {
	Connected      bool   `json:"connected"`
	Addr           string `json:"addr,omitempty"`
	Apply          bool   `json:"apply,omitempty"`
	Owns           []int  `json:"owns,omitempty"`
	Acked          uint64 `json:"acked"`
	AckDigest      string `json:"ack_digest,omitempty"`
	Sent           uint64 `json:"sent"`
	Proposed       uint64 `json:"proposed,omitempty"`
	Resolved       uint64 `json:"resolved,omitempty"`
	Applies        int    `json:"applies,omitempty"`
	ApplyRetries   int    `json:"apply_retries,omitempty"`
	Snapshots      int    `json:"snapshots"`
	Replays        int    `json:"replays"`
	Collapsed      int    `json:"collapsed"`
	DigestMismatch int    `json:"digest_mismatches"`
	LastSeenUnixMs int64  `json:"last_seen_unix_ms,omitempty"`
}

// Serve accepts agent connections on ln until the listener is closed.
// Each accepted connection is handshaken and then served by a writer
// goroutine (frames out) and a reader goroutine (acks/heartbeats in).
func (fo *Fanout) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go fo.serveConn(conn)
	}
}

// serveConn handshakes one agent connection and runs its writer loop.
func (fo *Fanout) serveConn(conn net.Conn) {
	defer conn.Close()
	hb := fo.cfg.Heartbeat
	_ = conn.SetReadDeadline(time.Now().Add(3 * hb))
	f, buf, err := ReadFrame(conn, nil)
	if err != nil {
		return
	}
	hello, ok := f.(*Hello)
	if !ok {
		return
	}
	if hello.Version != ProtocolVersion {
		_, _ = WriteFrame(conn, buf, &Bye{Reason: (&VersionError{Got: hello.Version, Want: ProtocolVersion}).Error()})
		return
	}
	if fo.cfg.Token != "" && subtle.ConstantTimeCompare([]byte(hello.Token), []byte(fo.cfg.Token)) != 1 {
		_, _ = WriteFrame(conn, buf, &Bye{Reason: "unauthorized"})
		return
	}
	agent := int(hello.Agent)
	if agent < 0 || agent >= fo.cfg.Shards {
		_, _ = WriteFrame(conn, buf, &Bye{Reason: fmt.Sprintf("agent %d out of range [0, %d)", agent, fo.cfg.Shards)})
		return
	}

	r := &remote{
		agent:    agent,
		conn:     conn,
		addr:     conn.RemoteAddr().String(),
		apply:    hello.Flags&HelloApply != 0,
		done:     make(chan struct{}),
		streams:  make(map[int]*stream),
		lastSeen: time.Now(),
		ladder:   &remoteLadder{coalesceLag: fo.cfg.Ladder.CoalesceLag},
	}
	if r.ladder.coalesceLag <= 0 {
		r.ladder.coalesceLag = 4
	}

	fo.mu.Lock()
	if fo.closed {
		fo.mu.Unlock()
		_, _ = WriteFrame(conn, buf, &Bye{Reason: "shutting down"})
		return
	}
	if prev := fo.remotes[agent]; prev != nil {
		// Latest connection wins; the replaced one unblocks and exits.
		prev.detachLocked()
	}
	fo.remotes[agent] = r
	// Reclaim the agent's own shard if a survivor adopted it while the
	// agent was away — unless the shard died on the virtual plane, which
	// is permanent.
	if !fo.deadShard[agent] && fo.remoteOwner[agent] != agent {
		fo.remoteOwner[agent] = agent
		fo.remoteEpoch[agent]++
	}
	head := fo.head
	fo.mu.Unlock()
	fo.wakeAcks()

	buf, err = WriteFrame(conn, buf, &Welcome{
		Version:    ProtocolVersion,
		Agent:      int32(agent),
		Shards:     int32(fo.cfg.Shards),
		Generation: head,
		Flags:      hello.Flags & HelloApply,
		Seed:       fo.cfg.Seed,
	})
	if err != nil {
		fo.detach(r)
		return
	}

	go fo.readLoop(r)
	fo.writeLoop(r, hello, buf)
	fo.detach(r)
}

// detachLocked marks a remote replaced/gone under fo.mu.
func (r *remote) detachLocked() {
	if !r.gone {
		r.gone = true
		close(r.done)
		r.conn.Close()
	}
}

// detach removes a remote from the attach table (if it is still the
// current one), hands its shards to a survivor, and wakes the barrier.
func (fo *Fanout) detach(r *remote) {
	fo.mu.Lock()
	r.detachLocked()
	if fo.remotes[r.agent] == r {
		delete(fo.remotes, r.agent)
		if !fo.closed {
			for s := 0; s < fo.cfg.Shards; s++ {
				if fo.remoteOwner[s] == r.agent {
					fo.reassignRemoteLocked(s)
				}
			}
		}
	}
	fo.mu.Unlock()
	fo.wakeAcks()
}

// reassignRemoteLocked moves a shard's remote stream after its owner
// detached or died: the lowest attached agent adopts it; with no
// survivor it reverts to its own agent (resuming if that agent returns)
// unless the shard is virtually dead, in which case it goes unserved.
func (fo *Fanout) reassignRemoteLocked(shard int) {
	best := -1
	for a, r := range fo.remotes {
		if r.gone || (fo.deadShard[shard] && a == shard) {
			continue
		}
		if best == -1 || a < best {
			best = a
		}
	}
	if best == -1 && !fo.deadShard[shard] {
		best = shard
	}
	if fo.remoteOwner[shard] != best {
		fo.remoteOwner[shard] = best
		fo.remoteEpoch[shard]++
	}
}

// readLoop consumes acks, apply results and heartbeats until the
// connection dies. A silent agent is disconnected after three missed
// heartbeat intervals — the deadline-based loss detection the wire
// contract promises.
func (fo *Fanout) readLoop(r *remote) {
	defer fo.detach(r)
	var buf []byte
	for {
		_ = r.conn.SetReadDeadline(time.Now().Add(3 * fo.cfg.Heartbeat))
		f, b, err := ReadFrame(r.conn, buf)
		buf = b
		if err != nil {
			return
		}
		switch f := f.(type) {
		case *Ack:
			fo.noteAck(r, f)
		case *Applied:
			fo.noteApplied(r, f)
		case *Heartbeat:
			fo.mu.Lock()
			r.lastSeen = time.Now()
			fo.mu.Unlock()
		case *Bye:
			return
		}
	}
}

// noteAck records a stream's applied cursor and verifies its digest
// chain against the coordinator's. A mismatch forces a snapshot resync
// on the next writer pass — divergence is healed, not accumulated.
func (fo *Fanout) noteAck(r *remote, a *Ack) {
	shard := int(a.Agent)
	if shard < 0 || shard >= fo.cfg.Shards {
		return
	}
	fo.mu.Lock()
	r.lastSeen = time.Now()
	if st := r.streams[shard]; st != nil {
		st.acked = a.Generation
		st.ackDigest = a.Digest
		e := fo.digests[shard][a.Generation%uint64(fo.retention)]
		if e.gen == a.Generation && e.digest != a.Digest {
			st.digestMismatch++
			st.forceSnap = true
		}
	}
	fo.mu.Unlock()
	fo.wakeAcks()
}

// noteApplied resolves one commit-protocol proposal: the agent's result
// digest is compared against the loopback engine's; a mismatch counts as
// a fallback apply (the coordinator's mirror is authoritative either
// way). The generation is then committed back to the agent with the
// coordinator's chain digest.
func (fo *Fanout) noteApplied(r *remote, a *Applied) {
	shard := int(a.Agent)
	if shard < 0 || shard >= fo.cfg.Shards {
		return
	}
	var commit uint64
	fo.mu.Lock()
	r.lastSeen = time.Now()
	st := r.streams[shard]
	if st == nil {
		fo.mu.Unlock()
		return
	}
	e := fo.results[shard][a.Generation%uint64(fo.retention)]
	if e.gen != a.Generation || e.digest != a.Digest {
		fo.applyMismatch[shard]++
		fo.fallback[shard]++
	}
	if a.Generation > st.resolved {
		st.resolved = a.Generation
	}
	st.applies++
	st.attempts += int(a.Attempts)
	st.retried += int(a.Retried)
	if d := fo.digests[shard][a.Generation%uint64(fo.retention)]; d.gen == a.Generation {
		commit = d.digest
	}
	fo.mu.Unlock()
	fo.wakeAcks()

	r.wmu.Lock()
	_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
	r.cbuf, _ = WriteFrame(r.conn, r.cbuf, &Commit{Agent: a.Agent, Generation: a.Generation, Digest: commit})
	r.wmu.Unlock()
}

// syncStreams reconciles the connection's stream set with the current
// remote-ownership table: adopted shards appear, reassigned-away shards
// vanish. Returns the streams to serve, in shard order, plus head.
func (fo *Fanout) syncStreams(r *remote, hello *Hello) ([]*stream, uint64) {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	for s := 0; s < fo.cfg.Shards; s++ {
		if fo.remoteOwner[s] != r.agent {
			delete(r.streams, s)
			continue
		}
		st := r.streams[s]
		if st == nil {
			st = &stream{shard: s, chain: ChainSeed, announced: ^uint64(0)}
			if s == r.agent && !r.helloUsed {
				// Resume the agent's own replica from its Hello cursor;
				// validated against the digest ring on the first pass.
				st.cursor, st.chain = hello.Cursor, hello.Digest
				r.helloUsed = true
			}
			r.streams[s] = st
		}
		st.epoch = fo.remoteEpoch[s]
	}
	out := make([]*stream, 0, len(r.streams))
	for _, st := range r.streams {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].shard < out[j].shard })
	return out, fo.head
}

// writeLoop streams frames to one agent: per owned shard,
// resume-or-snapshot from the cursor, ring replay as generations land,
// commit-protocol proposals in apply mode, Reassign announcements when a
// shard is adopted, heartbeats when idle, and snapshot collapse when a
// stream falls too far behind.
func (fo *Fanout) writeLoop(r *remote, hello *Hello, buf []byte) {
	var err error
	for {
		select {
		case <-r.done:
			return
		default:
		}
		streams, head := fo.syncStreams(r, hello)
		progress := false
		for _, st := range streams {
			var p bool
			p, buf, err = fo.serveStream(r, st, head, buf)
			if err != nil {
				return
			}
			progress = progress || p
		}
		if progress {
			continue
		}

		// Caught up (or nothing produced yet): wait for the next
		// generation or an ownership change, heartbeating so the agent
		// knows we are alive.
		ch := fo.cfg.Updated()
		fo.mu.Lock()
		ackCh := fo.ackNotify
		moved := fo.cfg.Head() > head
		fo.mu.Unlock()
		if moved {
			continue
		}
		select {
		case <-r.done:
			return
		case <-ch:
		case <-ackCh:
		case <-time.After(fo.cfg.Heartbeat):
			r.wmu.Lock()
			_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
			buf, err = WriteFrame(r.conn, buf, &Heartbeat{Generation: head})
			r.wmu.Unlock()
			if err != nil {
				return
			}
		}
	}
}

// serveStream advances one shard stream as far as it can without
// blocking on the producer: Reassign announcement, snapshot resync,
// ring replay with proposals. Reports whether it made progress.
func (fo *Fanout) serveStream(r *remote, st *stream, head uint64, buf []byte) (bool, []byte, error) {
	progress := false
	var err error

	// An adopted shard announces its ownership epoch before any frames:
	// the agent creates (or resets expectations for) a secondary replica.
	if st.shard != r.agent && st.announced != st.epoch {
		r.wmu.Lock()
		_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
		buf, err = WriteFrame(r.conn, buf, &Reassign{Shard: int32(st.shard), Epoch: st.epoch, Generation: head})
		r.wmu.Unlock()
		if err != nil {
			return false, buf, err
		}
		st.announced = st.epoch
		st.cursor = 0 // adopted state starts from a snapshot
		progress = true
	}
	if !st.validated {
		if d, ok := fo.digestAt(st.shard, st.cursor); st.cursor == 0 || !ok || d != st.chain {
			st.cursor = 0
		}
		st.validated = true
	}

	fo.mu.Lock()
	force := st.forceSnap
	st.forceSnap = false
	fo.mu.Unlock()

	lag := head - st.cursor
	collapse := st.cursor > 0 && lag > uint64(4*r.ladder.coalesceLag)
	if collapse {
		fo.mu.Lock()
		st.collapsed++
		fo.mu.Unlock()
	}
	if st.cursor == 0 || force || collapse {
		if head == 0 {
			st.cursor, st.chain = 0, ChainSeed
			return progress, buf, nil
		}
		var sent bool
		sent, buf, err = fo.sendSnapshot(r, st, buf)
		if err != nil || !sent {
			return progress, buf, err
		}
		progress = true
	}

	if st.cursor > 0 && st.cursor < head {
		recs, ok := fo.cfg.Replay(st.cursor)
		if !ok {
			// The ring evicted the cursor while we slept: forced full
			// resync on the next pass.
			fo.mu.Lock()
			st.forceSnap = true
			fo.mu.Unlock()
			return true, buf, nil
		}
		var frame DiffFrame
		for i := range recs {
			fo.buildFrameInto(&frame, st.shard, &recs[i])
			frame.Agent = int32(st.shard)
			st.chain = FoldDiff(st.chain, &frame)
			r.wmu.Lock()
			_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
			buf, err = WriteFrame(r.conn, buf, &frame)
			r.wmu.Unlock()
			if err != nil {
				return progress, buf, err
			}
			st.cursor = recs[i].Generation
			if buf, err = fo.propose(r, st, recs[i].Generation, buf); err != nil {
				return progress, buf, err
			}
		}
		fo.mu.Lock()
		st.sent = st.cursor
		st.replays++
		fo.mu.Unlock()
		progress = true
	}
	return progress, buf, nil
}

// propose runs the commit protocol for one generation in apply mode: if
// the loopback engine recorded a result for it, wait for the in-flight
// window, then ship a Propose. A window that never drains within the
// write timeout is charged as fallback applies — the coordinator's
// mirror already applied the generations, so the run proceeds, never
// silently.
func (fo *Fanout) propose(r *remote, st *stream, gen uint64, buf []byte) ([]byte, error) {
	if !r.apply {
		return buf, nil
	}
	e, ok := fo.resultAt(st.shard, gen)
	if !ok || e.flags == 0 {
		return buf, nil
	}
	fo.awaitWindow(r, st)
	r.wmu.Lock()
	_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
	buf, err := WriteFrame(r.conn, buf, &Propose{Agent: int32(st.shard), Generation: gen, Flags: e.flags})
	r.wmu.Unlock()
	if err != nil {
		return buf, err
	}
	fo.mu.Lock()
	st.proposed = gen
	fo.mu.Unlock()
	return buf, nil
}

// awaitWindow blocks until the stream's in-flight proposals fit the
// apply window, charging unresolved proposals as fallbacks on timeout.
func (fo *Fanout) awaitWindow(r *remote, st *stream) {
	deadline := time.Now().Add(fo.cfg.WriteTimeout)
	for {
		fo.mu.Lock()
		pending := st.proposed - st.resolved
		ch := fo.ackNotify
		fo.mu.Unlock()
		if pending < uint64(fo.cfg.ApplyWindow) {
			return
		}
		select {
		case <-r.done:
			return
		case <-ch:
		case <-time.After(time.Until(deadline)):
			fo.mu.Lock()
			if st.proposed > st.resolved {
				fo.fallback[st.shard] += int(st.proposed - st.resolved)
				st.resolved = st.proposed
			}
			fo.mu.Unlock()
			fo.wakeAcks()
			return
		}
	}
}

// sendSnapshot ships a full shard snapshot at head and advances the
// stream cursor. Returns false (without error) when the digest ring has
// not caught up yet and the caller should retry after the next update.
func (fo *Fanout) sendSnapshot(r *remote, st *stream, buf []byte) (bool, []byte, error) {
	snap, err := fo.cfg.Snapshot(st.shard)
	if err != nil {
		return false, buf, err
	}
	d, ok := fo.digestAt(st.shard, snap.Generation)
	if !ok {
		// The digest ring has not caught up with this generation yet (or
		// already evicted it); retry after the next update.
		select {
		case <-r.done:
			return false, buf, errors.New("hostlink: detached")
		case <-fo.cfg.Updated():
		case <-time.After(fo.cfg.Heartbeat):
		}
		st.cursor, st.chain = 0, ChainSeed
		return false, buf, nil
	}
	snap.Agent = int32(st.shard)
	snap.Digest = d
	r.wmu.Lock()
	_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
	buf, err = WriteFrame(r.conn, buf, snap)
	r.wmu.Unlock()
	if err != nil {
		return false, buf, err
	}
	fo.mu.Lock()
	st.snapshots++
	st.sent = snap.Generation
	fo.mu.Unlock()
	st.cursor, st.chain = snap.Generation, d
	return true, buf, nil
}

// wakeAcks wakes WaitRemotes waiters and idle writers.
func (fo *Fanout) wakeAcks() {
	fo.mu.Lock()
	close(fo.ackNotify)
	fo.ackNotify = make(chan struct{})
	fo.mu.Unlock()
}

// ConnectedAgents returns how many agents are currently attached.
func (fo *Fanout) ConnectedAgents() int {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	return len(fo.remotes)
}

// remoteLagLocked reports whether any served stream is behind: cursor
// not acked at head, or proposals unresolved. A shard whose remote
// owner is attached but whose stream has not materialized yet counts as
// behind — the barrier must not pass between a detach and the
// survivor's adoption.
func (fo *Fanout) remoteLagLocked() bool {
	for s := 0; s < fo.cfg.Shards; s++ {
		r, ok := fo.remotes[fo.remoteOwner[s]]
		if !ok || r.gone {
			continue
		}
		st := r.streams[s]
		if st == nil || st.acked < fo.head || st.resolved < st.proposed {
			return true
		}
	}
	return false
}

// WaitRemotes blocks until every served shard stream has acked the
// current head generation and resolved its proposals, or the timeout
// elapses. Detached agents do not count — a killed agent must not stall
// the run; its shard is adopted by a survivor or resyncs when it
// returns. Reports whether all served streams were caught up on return.
func (fo *Fanout) WaitRemotes(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		fo.mu.Lock()
		caughtUp := !fo.remoteLagLocked()
		ch := fo.ackNotify
		fo.mu.Unlock()
		if caughtUp {
			return true
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return false
		}
		select {
		case <-ch:
		case <-time.After(wait):
			return false
		}
	}
}

// VerifyRemotes checks every served shard stream's final state against
// the coordinator: cursor at head, chain digest identical, proposals
// resolved. It is the distributed run's proof of equivalence with the
// loopback path.
func (fo *Fanout) VerifyRemotes() error {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	var errs []error
	for s := 0; s < fo.cfg.Shards; s++ {
		owner := fo.remoteOwner[s]
		r, ok := fo.remotes[owner]
		if !ok || r.gone {
			continue
		}
		st := r.streams[s]
		if st == nil {
			errs = append(errs, fmt.Errorf("hostlink: shard %d has no stream on agent %d", s, owner))
			continue
		}
		if st.acked != fo.head {
			errs = append(errs, fmt.Errorf("hostlink: shard %d on agent %d acked generation %d, head is %d", s, owner, st.acked, fo.head))
			continue
		}
		e := fo.digests[s][fo.head%uint64(fo.retention)]
		if e.gen == fo.head && e.digest != st.ackDigest {
			errs = append(errs, fmt.Errorf("hostlink: shard %d digest %016x diverged from coordinator %016x at generation %d",
				s, st.ackDigest, e.digest, fo.head))
		}
		if st.resolved < st.proposed {
			errs = append(errs, fmt.Errorf("hostlink: shard %d on agent %d resolved generation %d behind proposal %d", s, owner, st.resolved, st.proposed))
		}
	}
	return errors.Join(errs...)
}

// Close says goodbye to every attached agent and refuses new ones.
func (fo *Fanout) Close() {
	fo.mu.Lock()
	fo.closed = true
	remotes := make([]*remote, 0, len(fo.remotes))
	for _, r := range fo.remotes {
		remotes = append(remotes, r)
	}
	fo.mu.Unlock()
	for _, r := range remotes {
		r.wmu.Lock()
		_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
		_, _ = WriteFrame(r.conn, nil, &Bye{Reason: "run complete"})
		r.wmu.Unlock()
		fo.detach(r)
	}
}

// AgentStatus is one shard's status document entry: the deterministic
// loopback counters plus, when a remote agent is attached, its wall-clock
// connection state.
type AgentStatus struct {
	ShardStats
	Remote *RemoteStatus `json:"remote,omitempty"`
}

// AgentsStatus returns the per-shard status documents for the /agents
// endpoint. The ShardStats half is the per-tick snapshot published by
// Distribute (the simulation owns the live counters); the Remote half
// exists only here.
func (fo *Fanout) AgentsStatus() []AgentStatus {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	stats := fo.statsSnap
	out := make([]AgentStatus, len(stats))
	for i, st := range stats {
		out[i] = AgentStatus{ShardStats: st}
		if r, ok := fo.remotes[i]; ok && !r.gone {
			rs := &RemoteStatus{
				Connected:      true,
				Addr:           r.addr,
				Apply:          r.apply,
				LastSeenUnixMs: r.lastSeen.UnixMilli(),
			}
			for s, stm := range r.streams {
				rs.Owns = append(rs.Owns, s)
				rs.Applies += stm.applies
				rs.ApplyRetries += stm.retried
				rs.Snapshots += stm.snapshots
				rs.Replays += stm.replays
				rs.Collapsed += stm.collapsed
				rs.DigestMismatch += stm.digestMismatch
				if s == r.agent {
					rs.Acked = stm.acked
					rs.AckDigest = fmt.Sprintf("%016x", stm.ackDigest)
					rs.Sent = stm.sent
					rs.Proposed = stm.proposed
					rs.Resolved = stm.resolved
				}
			}
			sort.Ints(rs.Owns)
			out[i].Remote = rs
		}
	}
	return out
}
