package hostlink

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// remote is one attached agent connection's bookkeeping. Everything here
// is wall-clock state: it feeds the /agents status document and the
// end-of-run barrier, never the simulation or the run report.
type remote struct {
	agent int
	conn  net.Conn
	addr  string

	// done is closed when the connection is torn down (reader error,
	// replacement, Close).
	done chan struct{}

	// acked/ackDigest are the agent's last reported cursor; sent is the
	// writer's cursor.
	acked     uint64
	ackDigest uint64
	sent      uint64
	lastSeen  time.Time

	snapshots      int
	replays        int
	collapsed      int
	digestMismatch int
	forceSnap      bool
	gone           bool
	ladder         *remoteLadder
}

// remoteLadder tracks a remote follower's backlog rung — the wall-clock
// twin of the loopback shard's supervise.Follower. When a remote falls
// past the coalesce rung the writer collapses its backlog into a single
// snapshot instead of replaying every retained generation.
type remoteLadder struct {
	coalesceLag int
}

// RemoteStatus describes one attached agent connection for the /agents
// document.
type RemoteStatus struct {
	Connected      bool   `json:"connected"`
	Addr           string `json:"addr,omitempty"`
	Acked          uint64 `json:"acked"`
	AckDigest      string `json:"ack_digest,omitempty"`
	Sent           uint64 `json:"sent"`
	Snapshots      int    `json:"snapshots"`
	Replays        int    `json:"replays"`
	Collapsed      int    `json:"collapsed"`
	DigestMismatch int    `json:"digest_mismatches"`
	LastSeenUnixMs int64  `json:"last_seen_unix_ms,omitempty"`
}

// Serve accepts agent connections on ln until the listener is closed.
// Each accepted connection is handshaken and then served by a writer
// goroutine (frames out) and a reader goroutine (acks/heartbeats in).
func (fo *Fanout) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go fo.serveConn(conn)
	}
}

// serveConn handshakes one agent connection and runs its writer loop.
func (fo *Fanout) serveConn(conn net.Conn) {
	defer conn.Close()
	hb := fo.cfg.Heartbeat
	_ = conn.SetReadDeadline(time.Now().Add(3 * hb))
	f, buf, err := ReadFrame(conn, nil)
	if err != nil {
		return
	}
	hello, ok := f.(*Hello)
	if !ok {
		return
	}
	if hello.Version != ProtocolVersion {
		_, _ = WriteFrame(conn, buf, &Bye{Reason: fmt.Sprintf("protocol version %d, want %d", hello.Version, ProtocolVersion)})
		return
	}
	agent := int(hello.Agent)
	if agent < 0 || agent >= fo.cfg.Shards {
		_, _ = WriteFrame(conn, buf, &Bye{Reason: fmt.Sprintf("agent %d out of range [0, %d)", agent, fo.cfg.Shards)})
		return
	}

	r := &remote{
		agent:    agent,
		conn:     conn,
		addr:     conn.RemoteAddr().String(),
		done:     make(chan struct{}),
		lastSeen: time.Now(),
		ladder:   &remoteLadder{coalesceLag: fo.cfg.Ladder.CoalesceLag},
	}
	if r.ladder.coalesceLag <= 0 {
		r.ladder.coalesceLag = 4
	}

	fo.mu.Lock()
	if fo.closed {
		fo.mu.Unlock()
		_, _ = WriteFrame(conn, buf, &Bye{Reason: "shutting down"})
		return
	}
	if prev := fo.remotes[agent]; prev != nil {
		// Latest connection wins; the replaced one unblocks and exits.
		prev.detachLocked()
	}
	fo.remotes[agent] = r
	head := fo.head
	fo.mu.Unlock()
	fo.wakeAcks()

	buf, err = WriteFrame(conn, buf, &Welcome{
		Version:    ProtocolVersion,
		Agent:      int32(agent),
		Shards:     int32(fo.cfg.Shards),
		Generation: head,
	})
	if err != nil {
		fo.detach(r)
		return
	}

	go fo.readLoop(r)
	fo.writeLoop(r, hello, buf)
	fo.detach(r)
}

// detachLocked marks a remote replaced/gone under fo.mu.
func (r *remote) detachLocked() {
	if !r.gone {
		r.gone = true
		close(r.done)
		r.conn.Close()
	}
}

// detach removes a remote from the attach table (if it is still the
// current one) and wakes the barrier.
func (fo *Fanout) detach(r *remote) {
	fo.mu.Lock()
	r.detachLocked()
	if fo.remotes[r.agent] == r {
		delete(fo.remotes, r.agent)
	}
	fo.mu.Unlock()
	fo.wakeAcks()
}

// readLoop consumes acks and heartbeats until the connection dies. A
// silent agent is disconnected after three missed heartbeat intervals —
// the deadline-based loss detection the wire contract promises.
func (fo *Fanout) readLoop(r *remote) {
	defer fo.detach(r)
	var buf []byte
	for {
		_ = r.conn.SetReadDeadline(time.Now().Add(3 * fo.cfg.Heartbeat))
		f, b, err := ReadFrame(r.conn, buf)
		buf = b
		if err != nil {
			return
		}
		switch f := f.(type) {
		case *Ack:
			fo.noteAck(r, f)
		case *Heartbeat:
			fo.mu.Lock()
			r.lastSeen = time.Now()
			fo.mu.Unlock()
		case *Bye:
			return
		}
	}
}

// noteAck records an agent's applied cursor and verifies its digest chain
// against the coordinator's. A mismatch forces a snapshot resync on the
// next writer pass — divergence is healed, not accumulated.
func (fo *Fanout) noteAck(r *remote, a *Ack) {
	fo.mu.Lock()
	r.lastSeen = time.Now()
	r.acked = a.Generation
	r.ackDigest = a.Digest
	e := fo.digests[r.agent][a.Generation%uint64(fo.retention)]
	if e.gen == a.Generation && e.digest != a.Digest {
		r.digestMismatch++
		r.forceSnap = true
	}
	fo.mu.Unlock()
	fo.wakeAcks()
}

// writeLoop streams the shard's frames to one agent: resume-or-snapshot
// from the Hello cursor, then ring replay as generations land, heartbeats
// when idle, and snapshot collapse when the agent falls too far behind.
func (fo *Fanout) writeLoop(r *remote, hello *Hello, buf []byte) {
	cursor := hello.Cursor
	chain := hello.Digest
	// A fresh replica (cursor 0) or one whose cursor/digest no longer
	// matches the retained chain starts from a snapshot.
	if d, ok := fo.digestAt(r.agent, cursor); cursor == 0 || !ok || d != chain {
		cursor = 0
	}
	var frame DiffFrame
	var err error
	for {
		select {
		case <-r.done:
			return
		default:
		}
		fo.mu.Lock()
		head := fo.head
		force := r.forceSnap
		r.forceSnap = false
		fo.mu.Unlock()

		lag := head - cursor
		collapse := cursor > 0 && lag > uint64(4*r.ladder.coalesceLag)
		if collapse {
			fo.mu.Lock()
			r.collapsed++
			fo.mu.Unlock()
		}
		if cursor == 0 || force || collapse {
			if head == 0 {
				// Nothing produced yet; wait below.
				cursor, chain = 0, ChainSeed
			} else {
				cursor, chain, buf, err = fo.sendSnapshot(r, buf)
				if err != nil {
					return
				}
			}
		}

		if cursor > 0 && cursor < head {
			recs, ok := fo.cfg.Replay(cursor)
			if !ok {
				// The ring evicted the cursor while we slept: forced
				// full resync.
				fo.mu.Lock()
				r.forceSnap = true
				fo.mu.Unlock()
				continue
			}
			for i := range recs {
				fo.buildFrameInto(&frame, r.agent, &recs[i])
				chain = FoldDiff(chain, &frame)
				_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
				if buf, err = WriteFrame(r.conn, buf, &frame); err != nil {
					return
				}
				cursor = recs[i].Generation
			}
			fo.mu.Lock()
			r.sent = cursor
			r.replays++
			fo.mu.Unlock()
			continue
		}

		// Caught up (or nothing produced yet): wait for the next
		// generation, heartbeating so the agent knows we are alive.
		ch := fo.cfg.Updated()
		if fo.cfg.Head() > cursor {
			continue
		}
		select {
		case <-r.done:
			return
		case <-ch:
		case <-time.After(fo.cfg.Heartbeat):
			_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
			if buf, err = WriteFrame(r.conn, buf, &Heartbeat{Generation: cursor}); err != nil {
				return
			}
		}
	}
}

// sendSnapshot ships a full shard snapshot at head and returns the new
// cursor and chain.
func (fo *Fanout) sendSnapshot(r *remote, buf []byte) (uint64, uint64, []byte, error) {
	snap, err := fo.cfg.Snapshot(r.agent)
	if err != nil {
		return 0, 0, buf, err
	}
	d, ok := fo.digestAt(r.agent, snap.Generation)
	if !ok {
		// The digest ring has not caught up with this generation yet (or
		// already evicted it); retry after the next update.
		select {
		case <-r.done:
			return 0, 0, buf, errors.New("hostlink: detached")
		case <-fo.cfg.Updated():
		case <-time.After(fo.cfg.Heartbeat):
		}
		return 0, ChainSeed, buf, nil
	}
	snap.Digest = d
	_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
	buf, err = WriteFrame(r.conn, buf, snap)
	if err != nil {
		return 0, 0, buf, err
	}
	fo.mu.Lock()
	r.snapshots++
	r.sent = snap.Generation
	fo.mu.Unlock()
	return snap.Generation, d, buf, nil
}

// wakeAcks wakes WaitRemotes waiters.
func (fo *Fanout) wakeAcks() {
	fo.mu.Lock()
	close(fo.ackNotify)
	fo.ackNotify = make(chan struct{})
	fo.mu.Unlock()
}

// ConnectedAgents returns how many agents are currently attached.
func (fo *Fanout) ConnectedAgents() int {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	return len(fo.remotes)
}

// WaitRemotes blocks until every attached agent has acked the current
// head generation, or the timeout elapses. Detached agents do not count —
// a killed agent must not stall the run; it resyncs from the ring when it
// returns. Reports whether all attached agents were caught up on return.
func (fo *Fanout) WaitRemotes(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		fo.mu.Lock()
		caughtUp := true
		for _, r := range fo.remotes {
			if !r.gone && r.acked < fo.head {
				caughtUp = false
				break
			}
		}
		ch := fo.ackNotify
		fo.mu.Unlock()
		if caughtUp {
			return true
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return false
		}
		select {
		case <-ch:
		case <-time.After(wait):
			return false
		}
	}
}

// VerifyRemotes checks every attached agent's final ack against the
// coordinator-side digest chain: cursor at head, chain digest identical.
// It is the distributed run's proof of equivalence with the loopback
// path.
func (fo *Fanout) VerifyRemotes() error {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	var errs []error
	for agent, r := range fo.remotes {
		if r.gone {
			continue
		}
		if r.acked != fo.head {
			errs = append(errs, fmt.Errorf("hostlink: agent %d acked generation %d, head is %d", agent, r.acked, fo.head))
			continue
		}
		e := fo.digests[agent][fo.head%uint64(fo.retention)]
		if e.gen == fo.head && e.digest != r.ackDigest {
			errs = append(errs, fmt.Errorf("hostlink: agent %d digest %016x diverged from coordinator %016x at generation %d",
				agent, r.ackDigest, e.digest, fo.head))
		}
	}
	return errors.Join(errs...)
}

// Close says goodbye to every attached agent and refuses new ones.
func (fo *Fanout) Close() {
	fo.mu.Lock()
	fo.closed = true
	remotes := make([]*remote, 0, len(fo.remotes))
	for _, r := range fo.remotes {
		remotes = append(remotes, r)
	}
	fo.mu.Unlock()
	for _, r := range remotes {
		_ = r.conn.SetWriteDeadline(time.Now().Add(fo.cfg.WriteTimeout))
		_, _ = WriteFrame(r.conn, nil, &Bye{Reason: "run complete"})
		fo.detach(r)
	}
}

// AgentStatus is one shard's status document entry: the deterministic
// loopback counters plus, when a remote agent is attached, its wall-clock
// connection state.
type AgentStatus struct {
	ShardStats
	Remote *RemoteStatus `json:"remote,omitempty"`
}

// AgentsStatus returns the per-shard status documents for the /agents
// endpoint. The ShardStats half is the per-tick snapshot published by
// Distribute (the simulation owns the live counters); the Remote half
// exists only here.
func (fo *Fanout) AgentsStatus() []AgentStatus {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	stats := fo.statsSnap
	out := make([]AgentStatus, len(stats))
	for i, st := range stats {
		out[i] = AgentStatus{ShardStats: st}
		if r, ok := fo.remotes[i]; ok && !r.gone {
			out[i].Remote = &RemoteStatus{
				Connected:      true,
				Addr:           r.addr,
				Acked:          r.acked,
				AckDigest:      fmt.Sprintf("%016x", r.ackDigest),
				Sent:           r.sent,
				Snapshots:      r.snapshots,
				Replays:        r.replays,
				Collapsed:      r.collapsed,
				DigestMismatch: r.digestMismatch,
				LastSeenUnixMs: r.lastSeen.UnixMilli(),
			}
		}
	}
	return out
}
