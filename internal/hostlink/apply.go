package hostlink

// ApplyResult summarizes one generation's pass through an apply engine —
// the commit protocol's unit of agreement. The coordinator's loopback
// engine and a remote agent's engine must produce the same Digest for the
// same generation; Attempts and Retried are informational telemetry and
// deliberately excluded from it.
type ApplyResult struct {
	Generation uint64
	Digest     uint64
	Attempts   uint32
	Retried    uint32
}

// ResultApplier is an Applier that reports a digest for its last applied
// generation. Appliers that implement it participate in the commit
// protocol: the fan-out tier records their results and compares them
// against the Applied frames remote agents return.
type ResultApplier interface {
	Applier
	LastResult() ApplyResult
}

// ResultDigest is the commit-protocol digest of one generation's apply: a
// function of the generation and the frame's policy flags only. Backend
// errors, retry counts and jitter draws are deliberately not folded in, so
// loopback and remote engines agree whenever they were asked to do the
// same work — a mismatch means divergent policy, not a flaky backend.
func ResultDigest(gen uint64, policyFlags uint8) uint64 {
	return fold64(fold64(fold64(ChainSeed, gen), uint64(policyFlags)), 0xE0)
}

// DeriveSeed scatters a base seed into decorrelated sub-streams — the
// per-generation jitter streams of an apply engine, aligned between the
// coordinator and its agents by construction rather than by call count.
func DeriveSeed(seed int64, idx uint64) int64 { return splitmix(seed, idx) }
