package hostlink

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

func roundtrip(t *testing.T, f any) any {
	t.Helper()
	var w bytes.Buffer
	if _, err := WriteFrame(&w, nil, f); err != nil {
		t.Fatalf("WriteFrame(%T): %v", f, err)
	}
	got, _, err := ReadFrame(&w, nil)
	if err != nil {
		t.Fatalf("ReadFrame(%T): %v", f, err)
	}
	return got
}

func TestWireRoundtrip(t *testing.T) {
	frames := []any{
		&Hello{Version: ProtocolVersion, Agent: 3, Cursor: 41, Digest: 0xdeadbeef, Flags: HelloApply, Token: "s3cret"},
		&Welcome{Version: ProtocolVersion, Agent: 3, Shards: 4, Generation: 42, Flags: HelloApply, Seed: -77},
		&Snapshot{
			Agent: 3, Generation: 7, Digest: 99, T: 14.5,
			Active:   []int32{1, 2, 5},
			Inactive: []int32{3},
			Links:    []LinkState{{A: 1, B: 2, DelayQ: 30}, {A: 2, B: 5, DelayQ: 12}},
		},
		&DiffFrame{
			Agent: 3, Generation: 8, T: 16.5, Flags: FlagChanged | FlagActivity, Degraded: 2,
			Added:       []LinkState{{A: 1, B: 3, DelayQ: 9}},
			Removed:     []LinkState{{A: 1, B: 2, DelayQ: -1}},
			Changed:     []LinkState{{A: 2, B: 5, DelayQ: 13}},
			Activated:   []int32{3},
			Deactivated: []int32{5},
		},
		&Ack{Agent: 3, Generation: 8, Digest: 0xabc},
		&Heartbeat{Generation: 8},
		&Bye{Reason: "run complete"},
		&Propose{Agent: 3, Generation: 8, Flags: FlagInvalidate | FlagSweep},
		&Applied{Agent: 3, Generation: 8, Digest: 0xfeed, Attempts: 4, Retried: 2},
		&Commit{Agent: 3, Generation: 8, Digest: 0xfeed},
		&Reassign{Shard: 2, Epoch: 1, Generation: 8},
	}
	for _, f := range frames {
		got := roundtrip(t, f)
		// Decoders materialize empty slices as nil-or-empty; normalize
		// via a second roundtrip of the decoded value for comparison.
		if !reflect.DeepEqual(roundtrip(t, got), got) {
			t.Errorf("%T did not survive the wire: %+v", f, got)
		}
		switch want := f.(type) {
		case *DiffFrame:
			g := got.(*DiffFrame)
			if g.Generation != want.Generation || g.Flags != want.Flags ||
				!reflect.DeepEqual(g.Added, want.Added) || !reflect.DeepEqual(g.Deactivated, want.Deactivated) {
				t.Errorf("DiffFrame roundtrip = %+v, want %+v", g, want)
			}
		case *Snapshot:
			g := got.(*Snapshot)
			if g.Generation != want.Generation || g.Digest != want.Digest ||
				!reflect.DeepEqual(g.Links, want.Links) {
				t.Errorf("Snapshot roundtrip = %+v, want %+v", g, want)
			}
		}
	}
}

func TestWireRejectsTruncatedAndOversized(t *testing.T) {
	var w bytes.Buffer
	if _, err := WriteFrame(&w, nil, &Ack{Agent: 1, Generation: 5, Digest: 9}); err != nil {
		t.Fatal(err)
	}
	frame := w.Bytes()
	// Chop the payload but keep the prefix: the reader must fail cleanly.
	if _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2]), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated frame error = %v, want unexpected EOF", err)
	}
	// A corrupt length prefix above the cap must be rejected before any
	// allocation.
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(MaxFramePayload+2))
	hdr[4] = byte(FrameDiff)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized frame error = %v, want ErrFrameTooLarge", err)
	}
	// A corrupt element count inside a valid envelope must not allocate
	// past the payload.
	var w2 bytes.Buffer
	payload := binary.LittleEndian.AppendUint32(nil, 0)        // agent
	payload = binary.LittleEndian.AppendUint64(payload, 9)     // generation
	payload = binary.LittleEndian.AppendUint64(payload, 0)     // T
	payload = append(payload, 0, 0)                            // flags, degraded
	payload = binary.LittleEndian.AppendUint32(payload, 1<<30) // bogus count
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	w2.Write(hdr[:])
	w2.Write(payload)
	if _, _, err := ReadFrame(&w2, nil); err == nil {
		t.Error("bogus element count decoded without error")
	}
}

func TestFoldDiffIgnoresPolicyFlags(t *testing.T) {
	f := &DiffFrame{
		Generation: 3, T: 6, Flags: FlagChanged,
		Added:     []LinkState{{A: 1, B: 2, DelayQ: 5}},
		Activated: []int32{4},
	}
	base := FoldDiff(ChainSeed, f)
	g := *f
	g.Flags |= FlagInvalidate | FlagSweep | FlagNote
	if FoldDiff(ChainSeed, &g) != base {
		t.Error("policy flags perturbed the digest chain")
	}
	// Content must perturb it.
	h := *f
	h.Added = []LinkState{{A: 1, B: 2, DelayQ: 6}}
	if FoldDiff(ChainSeed, &h) == base {
		t.Error("changed content did not perturb the digest chain")
	}
	// Field-group boundaries matter: the same link under a different
	// section must fold differently.
	i := *f
	i.Added, i.Changed = nil, f.Added
	if FoldDiff(ChainSeed, &i) == base {
		t.Error("moving a link between sections did not perturb the chain")
	}
}
