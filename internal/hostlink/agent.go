package hostlink

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrGap reports a diff frame that does not extend the replica's cursor:
// the agent must reconnect and resync (ring replay or snapshot).
var ErrGap = errors.New("hostlink: generation gap")

// Replica is the agent-side shard state: the set of active/inactive
// machines and per-link delay quanta its host would program, rebuilt from
// snapshots and diff frames, with the digest chain folded alongside so
// the coordinator can verify byte-exact convergence. On a real multi-host
// deployment this is where machine lifecycle and netem shaper calls
// attach; the standalone agent keeps the state and the proof.
type Replica struct {
	mu     sync.Mutex
	active map[int32]bool
	links  map[[2]int32]int32
	gen    uint64
	digest uint64
	t      float64
	notify chan struct{}

	frames    int
	snapshots int

	// history retains recently applied diff frames (oldest first,
	// contiguous generations ending at gen) for the agent's local /v1
	// read path; a snapshot is a resync point and clears it.
	history []*DiffFrame
}

// replicaHistoryCap bounds the replica's retained diff frames — a small
// replay window for local /diff followers, independent of the
// coordinator's retention ring.
const replicaHistoryCap = 64

// NewReplica returns an empty replica at generation 0.
func NewReplica() *Replica {
	return &Replica{
		active: make(map[int32]bool),
		links:  make(map[[2]int32]int32),
		digest: ChainSeed,
		notify: make(chan struct{}),
	}
}

func linkKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// ApplySnapshot replaces the replica's state wholesale and adopts the
// snapshot's generation and chain digest.
func (r *Replica) ApplySnapshot(s *Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.active)
	clear(r.links)
	for _, id := range s.Active {
		r.active[id] = true
	}
	for _, id := range s.Inactive {
		r.active[id] = false
	}
	for _, l := range s.Links {
		r.links[linkKey(l.A, l.B)] = l.DelayQ
	}
	r.gen = s.Generation
	r.digest = s.Digest
	r.t = s.T
	r.snapshots++
	r.history = r.history[:0]
	r.wake()
	return nil
}

// ApplyDiff folds one in-order diff frame into the replica. Frames that
// do not extend the cursor by exactly one generation — including Full
// frames, which carry no deltas — return ErrGap.
func (r *Replica) ApplyDiff(f *DiffFrame) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f.Flags&FlagFull != 0 || f.Generation != r.gen+1 {
		return fmt.Errorf("%w: frame %d onto replica at %d", ErrGap, f.Generation, r.gen)
	}
	for _, l := range f.Added {
		r.links[linkKey(l.A, l.B)] = l.DelayQ
	}
	for _, l := range f.Changed {
		r.links[linkKey(l.A, l.B)] = l.DelayQ
	}
	for _, l := range f.Removed {
		delete(r.links, linkKey(l.A, l.B))
	}
	for _, id := range f.Activated {
		r.active[id] = true
	}
	for _, id := range f.Deactivated {
		r.active[id] = false
	}
	r.gen = f.Generation
	r.digest = FoldDiff(r.digest, f)
	r.t = f.T
	r.frames++
	// The frame is retained for local /diff replay; ReadFrame hands the
	// replica a freshly decoded value, never a reused buffer.
	r.history = append(r.history, f)
	if len(r.history) > replicaHistoryCap {
		r.history = r.history[1:]
	}
	r.wake()
	return nil
}

// Diffs returns the retained diff frames in (since, gen], oldest first.
// ok=false means since fell outside the history window (evicted, or
// before the last snapshot resync, or ahead of the cursor) and the
// follower must resync from full state. The returned frames are shared
// and must be treated as immutable.
func (r *Replica) Diffs(since uint64) ([]*DiffFrame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if since == r.gen {
		return nil, true
	}
	if since > r.gen || len(r.history) == 0 {
		return nil, false
	}
	oldest := r.history[0].Generation
	if since+1 < oldest {
		return nil, false
	}
	out := make([]*DiffFrame, 0, r.gen-since)
	for _, f := range r.history[since+1-oldest:] {
		out = append(out, f)
	}
	return out, true
}

// wake closes and renews the update channel; callers hold r.mu.
func (r *Replica) wake() {
	if r.notify != nil {
		close(r.notify)
		r.notify = make(chan struct{})
	}
}

// UpdateChan returns a channel closed on the next replica update — the
// same contract the coordinator's UpdateChan offers SSE streams.
func (r *Replica) UpdateChan() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.notify == nil {
		r.notify = make(chan struct{})
	}
	return r.notify
}

// State returns the replica's generation, chain digest and simulation
// time.
func (r *Replica) State() (gen, digest uint64, t float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen, r.digest, r.t
}

// Cursor returns the replica's applied generation and chain digest.
func (r *Replica) Cursor() (gen, digest uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen, r.digest
}

// Counts returns the replica's tracked state sizes and how it got there.
func (r *Replica) Counts() (active, inactive, links, frames, snapshots int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.active {
		if a {
			active++
		} else {
			inactive++
		}
	}
	return active, inactive, len(r.links), r.frames, r.snapshots
}

// Agent is the client side of the wire protocol: it dials the
// coordinator, identifies its shard, follows the frame stream into its
// Replica, acks every applied generation, and reconnects with its cursor
// after any failure — the resync then comes from the coordinator's
// retention ring, or a snapshot when the ring has moved on.
type Agent struct {
	// ID is the shard this agent owns; Addr the coordinator's listen
	// address.
	ID   int
	Addr string
	// Replica is the state being maintained; nil gets a fresh one.
	Replica *Replica
	// Heartbeat must match the coordinator's (both sides time out after
	// three missed intervals); zero means DefaultHeartbeat.
	Heartbeat time.Duration
	// ReconnectWait spaces redial attempts; zero means 500ms.
	ReconnectWait time.Duration
	// Token is presented in the Hello frame when the coordinator
	// requires bearer auth; TLS, when set, wraps the connection.
	Token string
	TLS   *tls.Config
	// Apply requests authoritative remote apply: the coordinator sends
	// Propose frames and this agent answers them through engines built
	// by NewApplier (one per served shard, seeded from the Welcome
	// frame). NewApplier is required when Apply is set.
	Apply      bool
	NewApplier func(shard int, seed int64) ResultApplier
	// Logf, when set, receives connection lifecycle notes.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	replicas map[int]*Replica      // adopted shards (ID's lives in Replica)
	engines  map[int]ResultApplier // per-shard apply engines
	seed     int64                 // fan-out seed from the Welcome frame
	stats    AgentStats
}

// AgentStats counts the agent side of the commit protocol and shard
// adoption — wall-clock telemetry, never part of the run report.
type AgentStats struct {
	Applies          int // Propose frames answered
	ApplyErrors      int // engine errors (still answered)
	Commits          int // Commit frames received
	CommitMismatches int // commits whose chain digest differed at our cursor
	Reassigns        int // Reassign frames received
}

// Stats returns a copy of the agent's protocol counters.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ReplicaFor returns the replica tracking one shard: the agent's own
// Replica for its shard, a lazily created secondary for adopted shards.
func (a *Agent) ReplicaFor(shard int) *Replica {
	if shard == a.ID {
		return a.Replica
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.replicas == nil {
		a.replicas = make(map[int]*Replica)
	}
	rep := a.replicas[shard]
	if rep == nil {
		rep = NewReplica()
		a.replicas[shard] = rep
	}
	return rep
}

// engineFor returns the shard's apply engine, building it on first use
// with the negotiated fan-out seed.
func (a *Agent) engineFor(shard int) ResultApplier {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.engines == nil {
		a.engines = make(map[int]ResultApplier)
	}
	e := a.engines[shard]
	if e == nil && a.NewApplier != nil {
		e = a.NewApplier(shard, a.seed)
		a.engines[shard] = e
	}
	return e
}

// Run follows the coordinator until a clean Bye (returns nil) or the
// context is canceled (returns the context error). Connection failures
// and generation gaps trigger reconnect-and-resync, not failure.
func (a *Agent) Run(ctx context.Context) error {
	if a.Replica == nil {
		a.Replica = NewReplica()
	}
	if a.Heartbeat <= 0 {
		a.Heartbeat = DefaultHeartbeat
	}
	wait := a.ReconnectWait
	if wait <= 0 {
		wait = 500 * time.Millisecond
	}
	for {
		done, err := a.session(ctx)
		if done {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.logf("hostlink agent %d: reconnecting in %v: %v", a.ID, wait, err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

// session runs one connection: handshake, then frames until error or Bye.
// done is true only on a clean Bye or context cancellation.
func (a *Agent) session(ctx context.Context) (done bool, err error) {
	d := net.Dialer{Timeout: 10 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", a.Addr)
	if err != nil {
		return false, err
	}
	if a.TLS != nil {
		conn = tls.Client(conn, a.TLS)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	var flags uint8
	if a.Apply {
		flags |= HelloApply
	}
	gen, digest := a.Replica.Cursor()
	buf, err := WriteFrame(conn, nil, &Hello{
		Version: ProtocolVersion,
		Agent:   int32(a.ID),
		Cursor:  gen,
		Digest:  digest,
		Flags:   flags,
		Token:   a.Token,
	})
	if err != nil {
		return false, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(3 * a.Heartbeat))
	f, rbuf, err := ReadFrame(conn, nil)
	if err != nil {
		return ctx.Err() != nil, err
	}
	apply := false
	switch f := f.(type) {
	case *Welcome:
		if f.Version != ProtocolVersion {
			return true, &VersionError{Got: f.Version, Want: ProtocolVersion}
		}
		apply = a.Apply && f.Flags&HelloApply != 0 && a.NewApplier != nil
		a.mu.Lock()
		a.seed = f.Seed
		a.mu.Unlock()
		a.logf("hostlink agent %d: attached to %s at generation %d (apply=%v)", a.ID, a.Addr, f.Generation, apply)
	case *Bye:
		return true, fmt.Errorf("hostlink: coordinator refused: %s", f.Reason)
	default:
		return false, fmt.Errorf("hostlink: handshake got %T", f)
	}

	for {
		_ = conn.SetReadDeadline(time.Now().Add(3 * a.Heartbeat))
		f, rbuf, err = ReadFrame(conn, rbuf)
		if err != nil {
			return ctx.Err() != nil, err
		}
		switch f := f.(type) {
		case *Snapshot:
			if err := a.ReplicaFor(int(f.Agent)).ApplySnapshot(f); err != nil {
				return false, err
			}
			if buf, err = a.ack(conn, buf, int(f.Agent)); err != nil {
				return false, err
			}
		case *DiffFrame:
			if err := a.ReplicaFor(int(f.Agent)).ApplyDiff(f); err != nil {
				// A gap: reconnect with the current cursor and let the
				// coordinator resync us.
				return false, err
			}
			if buf, err = a.ack(conn, buf, int(f.Agent)); err != nil {
				return false, err
			}
		case *Propose:
			if !apply {
				continue
			}
			if buf, err = a.applyPropose(conn, buf, f); err != nil {
				return false, err
			}
		case *Commit:
			a.noteCommit(f)
		case *Reassign:
			// The announced shard's snapshot follows; make sure its
			// replica exists so /v1 reads can find it immediately.
			_ = a.ReplicaFor(int(f.Shard))
			a.mu.Lock()
			a.stats.Reassigns++
			a.mu.Unlock()
			a.logf("hostlink agent %d: adopted shard %d (epoch %d)", a.ID, f.Shard, f.Epoch)
		case *Heartbeat:
			gen, _ := a.Replica.Cursor()
			_ = conn.SetWriteDeadline(time.Now().Add(DefaultWriteTimeout))
			if buf, err = WriteFrame(conn, buf, &Heartbeat{Generation: gen}); err != nil {
				return false, err
			}
		case *Bye:
			a.logf("hostlink agent %d: coordinator said goodbye: %s", a.ID, f.Reason)
			return true, nil
		}
	}
}

// applyPropose answers one commit-protocol proposal: run the shard's
// engine over the proposed generation's policy flags and report the
// result digest plus retry counters. Engine errors are reported in the
// digest-carrying Applied frame all the same — the coordinator's mirror
// is authoritative and must hear from us either way.
func (a *Agent) applyPropose(conn net.Conn, buf []byte, p *Propose) ([]byte, error) {
	e := a.engineFor(int(p.Agent))
	if e == nil {
		return buf, fmt.Errorf("hostlink: no apply engine for shard %d", p.Agent)
	}
	err := e.ApplyDiff(&DiffFrame{Agent: p.Agent, Generation: p.Generation, Flags: p.Flags})
	res := e.LastResult()
	a.mu.Lock()
	a.stats.Applies++
	if err != nil {
		a.stats.ApplyErrors++
	}
	a.mu.Unlock()
	_ = conn.SetWriteDeadline(time.Now().Add(DefaultWriteTimeout))
	return WriteFrame(conn, buf, &Applied{
		Agent:      p.Agent,
		Generation: res.Generation,
		Digest:     res.Digest,
		Attempts:   res.Attempts,
		Retried:    res.Retried,
	})
}

// noteCommit verifies a committed generation against the shard replica
// when their cursors line up — a cheap continuous audit of the chain.
func (a *Agent) noteCommit(c *Commit) {
	gen, digest := a.ReplicaFor(int(c.Agent)).Cursor()
	a.mu.Lock()
	a.stats.Commits++
	if gen == c.Generation && digest != c.Digest {
		a.stats.CommitMismatches++
	}
	a.mu.Unlock()
}

// ack reports one shard replica's cursor and digest.
func (a *Agent) ack(conn net.Conn, buf []byte, shard int) ([]byte, error) {
	gen, digest := a.ReplicaFor(shard).Cursor()
	_ = conn.SetWriteDeadline(time.Now().Add(DefaultWriteTimeout))
	return WriteFrame(conn, buf, &Ack{Agent: int32(shard), Generation: gen, Digest: digest})
}
