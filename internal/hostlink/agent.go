package hostlink

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrGap reports a diff frame that does not extend the replica's cursor:
// the agent must reconnect and resync (ring replay or snapshot).
var ErrGap = errors.New("hostlink: generation gap")

// Replica is the agent-side shard state: the set of active/inactive
// machines and per-link delay quanta its host would program, rebuilt from
// snapshots and diff frames, with the digest chain folded alongside so
// the coordinator can verify byte-exact convergence. On a real multi-host
// deployment this is where machine lifecycle and netem shaper calls
// attach; the standalone agent keeps the state and the proof.
type Replica struct {
	mu     sync.Mutex
	active map[int32]bool
	links  map[[2]int32]int32
	gen    uint64
	digest uint64

	frames    int
	snapshots int
}

// NewReplica returns an empty replica at generation 0.
func NewReplica() *Replica {
	return &Replica{
		active: make(map[int32]bool),
		links:  make(map[[2]int32]int32),
		digest: ChainSeed,
	}
}

func linkKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// ApplySnapshot replaces the replica's state wholesale and adopts the
// snapshot's generation and chain digest.
func (r *Replica) ApplySnapshot(s *Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.active)
	clear(r.links)
	for _, id := range s.Active {
		r.active[id] = true
	}
	for _, id := range s.Inactive {
		r.active[id] = false
	}
	for _, l := range s.Links {
		r.links[linkKey(l.A, l.B)] = l.DelayQ
	}
	r.gen = s.Generation
	r.digest = s.Digest
	r.snapshots++
	return nil
}

// ApplyDiff folds one in-order diff frame into the replica. Frames that
// do not extend the cursor by exactly one generation — including Full
// frames, which carry no deltas — return ErrGap.
func (r *Replica) ApplyDiff(f *DiffFrame) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f.Flags&FlagFull != 0 || f.Generation != r.gen+1 {
		return fmt.Errorf("%w: frame %d onto replica at %d", ErrGap, f.Generation, r.gen)
	}
	for _, l := range f.Added {
		r.links[linkKey(l.A, l.B)] = l.DelayQ
	}
	for _, l := range f.Changed {
		r.links[linkKey(l.A, l.B)] = l.DelayQ
	}
	for _, l := range f.Removed {
		delete(r.links, linkKey(l.A, l.B))
	}
	for _, id := range f.Activated {
		r.active[id] = true
	}
	for _, id := range f.Deactivated {
		r.active[id] = false
	}
	r.gen = f.Generation
	r.digest = FoldDiff(r.digest, f)
	r.frames++
	return nil
}

// Cursor returns the replica's applied generation and chain digest.
func (r *Replica) Cursor() (gen, digest uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen, r.digest
}

// Counts returns the replica's tracked state sizes and how it got there.
func (r *Replica) Counts() (active, inactive, links, frames, snapshots int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.active {
		if a {
			active++
		} else {
			inactive++
		}
	}
	return active, inactive, len(r.links), r.frames, r.snapshots
}

// Agent is the client side of the wire protocol: it dials the
// coordinator, identifies its shard, follows the frame stream into its
// Replica, acks every applied generation, and reconnects with its cursor
// after any failure — the resync then comes from the coordinator's
// retention ring, or a snapshot when the ring has moved on.
type Agent struct {
	// ID is the shard this agent owns; Addr the coordinator's listen
	// address.
	ID   int
	Addr string
	// Replica is the state being maintained; nil gets a fresh one.
	Replica *Replica
	// Heartbeat must match the coordinator's (both sides time out after
	// three missed intervals); zero means DefaultHeartbeat.
	Heartbeat time.Duration
	// ReconnectWait spaces redial attempts; zero means 500ms.
	ReconnectWait time.Duration
	// Logf, when set, receives connection lifecycle notes.
	Logf func(format string, args ...any)
}

// Run follows the coordinator until a clean Bye (returns nil) or the
// context is canceled (returns the context error). Connection failures
// and generation gaps trigger reconnect-and-resync, not failure.
func (a *Agent) Run(ctx context.Context) error {
	if a.Replica == nil {
		a.Replica = NewReplica()
	}
	if a.Heartbeat <= 0 {
		a.Heartbeat = DefaultHeartbeat
	}
	wait := a.ReconnectWait
	if wait <= 0 {
		wait = 500 * time.Millisecond
	}
	for {
		done, err := a.session(ctx)
		if done {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.logf("hostlink agent %d: reconnecting in %v: %v", a.ID, wait, err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

// session runs one connection: handshake, then frames until error or Bye.
// done is true only on a clean Bye or context cancellation.
func (a *Agent) session(ctx context.Context) (done bool, err error) {
	d := net.Dialer{Timeout: 10 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", a.Addr)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	gen, digest := a.Replica.Cursor()
	buf, err := WriteFrame(conn, nil, &Hello{
		Version: ProtocolVersion,
		Agent:   int32(a.ID),
		Cursor:  gen,
		Digest:  digest,
	})
	if err != nil {
		return false, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(3 * a.Heartbeat))
	f, rbuf, err := ReadFrame(conn, nil)
	if err != nil {
		return ctx.Err() != nil, err
	}
	switch f := f.(type) {
	case *Welcome:
		if f.Version != ProtocolVersion {
			return true, fmt.Errorf("hostlink: coordinator protocol version %d, want %d", f.Version, ProtocolVersion)
		}
		a.logf("hostlink agent %d: attached to %s at generation %d", a.ID, a.Addr, f.Generation)
	case *Bye:
		return true, fmt.Errorf("hostlink: coordinator refused: %s", f.Reason)
	default:
		return false, fmt.Errorf("hostlink: handshake got %T", f)
	}

	for {
		_ = conn.SetReadDeadline(time.Now().Add(3 * a.Heartbeat))
		f, rbuf, err = ReadFrame(conn, rbuf)
		if err != nil {
			return ctx.Err() != nil, err
		}
		switch f := f.(type) {
		case *Snapshot:
			if err := a.Replica.ApplySnapshot(f); err != nil {
				return false, err
			}
			if buf, err = a.ack(conn, buf); err != nil {
				return false, err
			}
		case *DiffFrame:
			if err := a.Replica.ApplyDiff(f); err != nil {
				// A gap: reconnect with the current cursor and let the
				// coordinator resync us.
				return false, err
			}
			if buf, err = a.ack(conn, buf); err != nil {
				return false, err
			}
		case *Heartbeat:
			gen, _ := a.Replica.Cursor()
			_ = conn.SetWriteDeadline(time.Now().Add(DefaultWriteTimeout))
			if buf, err = WriteFrame(conn, buf, &Heartbeat{Generation: gen}); err != nil {
				return false, err
			}
		case *Bye:
			a.logf("hostlink agent %d: coordinator said goodbye: %s", a.ID, f.Reason)
			return true, nil
		}
	}
}

// ack reports the replica's cursor and digest.
func (a *Agent) ack(conn net.Conn, buf []byte) ([]byte, error) {
	gen, digest := a.Replica.Cursor()
	_ = conn.SetWriteDeadline(time.Now().Add(DefaultWriteTimeout))
	return WriteFrame(conn, buf, &Ack{Agent: int32(a.ID), Generation: gen, Digest: digest})
}
