package hostlink

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"celestial/internal/constellation"
	"celestial/internal/retry"
	"celestial/internal/supervise"
)

// fakeSim is a minimal virtual clock: After-scheduled callbacks fire in
// due-then-insertion order when the clock advances, like vnet.Sim.
type fakeSim struct {
	now    time.Time
	timers []fakeTimer
}

type fakeTimer struct {
	due time.Time
	fn  func()
}

func (fs *fakeSim) Now() time.Time { return fs.now }

func (fs *fakeSim) After(d time.Duration, fn func()) error {
	fs.timers = append(fs.timers, fakeTimer{due: fs.now.Add(d), fn: fn})
	return nil
}

func (fs *fakeSim) advance(to time.Time) {
	for {
		best := -1
		for i, t := range fs.timers {
			if t.due.After(to) {
				continue
			}
			if best < 0 || t.due.Before(fs.timers[best].due) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		t := fs.timers[best]
		fs.timers = append(fs.timers[:best], fs.timers[best+1:]...)
		fs.now = t.due
		t.fn()
	}
	fs.now = to
}

// memSource is an in-memory diff producer mirroring the coordinator's
// retention-ring contract: Replay(since) serves the retained suffix or
// reports eviction, Snapshot serves head. Safe for concurrent readers
// (remote writer goroutines).
type memSource struct {
	mu        sync.Mutex
	recs      []Record // recs[g-1] holds generation g
	head      uint64
	retention int
	notify    chan struct{}
}

func newMemSource(retention int) *memSource {
	return &memSource{retention: retention, notify: make(chan struct{})}
}

func (m *memSource) push(rec Record) {
	m.mu.Lock()
	m.recs = append(m.recs, rec)
	m.head = rec.Generation
	close(m.notify)
	m.notify = make(chan struct{})
	m.mu.Unlock()
}

func (m *memSource) Head() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.head
}

func (m *memSource) Updated() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.notify
}

func (m *memSource) Replay(since uint64) ([]Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if since > m.head {
		return nil, false
	}
	if since == m.head {
		return nil, true
	}
	oldest := uint64(1)
	if m.head > uint64(m.retention) {
		oldest = m.head - uint64(m.retention) + 1
	}
	if since+1 < oldest {
		return nil, false
	}
	return append([]Record(nil), m.recs[since:m.head]...), true
}

func (m *memSource) Snapshot(shard int) (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &Snapshot{Generation: m.head, T: float64(m.head)}, nil
}

// recApplier records the frames a shard's loopback applier received.
type recApplier struct {
	gens  []uint64
	flags []uint8
	snaps []uint64
	err   error
}

func (a *recApplier) ApplySnapshot(s *Snapshot) error {
	a.snaps = append(a.snaps, s.Generation)
	return a.err
}

func (a *recApplier) ApplyDiff(f *DiffFrame) error {
	a.gens = append(a.gens, f.Generation)
	a.flags = append(a.flags, f.Flags)
	return a.err
}

const testNodes = 4

type harness struct {
	fs   *fakeSim
	src  *memSource
	fo   *Fanout
	apps []*recApplier
	res  time.Duration
	gen  uint64
}

func newHarness(t *testing.T, shards, retention int, mod func(*Config)) *harness {
	t.Helper()
	h := &harness{
		fs:  &fakeSim{now: time.Unix(0, 0)},
		src: newMemSource(retention),
		res: 2 * time.Second,
	}
	appliers := make([]Applier, shards)
	for i := range appliers {
		a := &recApplier{}
		h.apps = append(h.apps, a)
		appliers[i] = a
	}
	cfg := Config{
		Shards:    shards,
		ShardOf:   func(node int) int { return node % shards },
		Appliers:  appliers,
		Now:       h.fs.Now,
		After:     h.fs.After,
		Head:      h.src.Head,
		Updated:   h.src.Updated,
		Replay:    h.src.Replay,
		Snapshot:  h.src.Snapshot,
		Seed:      42,
		Heartbeat: 100 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	fo, err := New(cfg, retention)
	if err != nil {
		t.Fatal(err)
	}
	h.fo = fo
	return h
}

// record fabricates generation g: node g%testNodes flips active and one
// link delta moves, so every shard sees traffic over time. Generation 1
// is Full, like a real run's first diff.
func (h *harness) record(g uint64) Record {
	rec := Record{Generation: g, T: float64(g) * h.res.Seconds()}
	if g == 1 {
		rec.Full = true
		return rec
	}
	n := int32(g % testNodes)
	rec.Activated = []int32{n}
	rec.Added = []constellation.LinkDelta{{A: int(n), B: int((n + 1) % testNodes), NewQ: int32(g)}}
	return rec
}

// tick advances the virtual clock one resolution (firing due timers) and
// produces + distributes the next generation at the given global level.
func (h *harness) tick(level supervise.Level) {
	h.gen++
	h.fs.advance(time.Unix(0, 0).Add(time.Duration(h.gen) * h.res))
	rec := h.record(h.gen)
	h.src.push(rec)
	h.fo.Advance(rec)
	if err := h.fo.Distribute(level); err != nil {
		panic(err)
	}
}

func (h *harness) run(n int) {
	for i := 0; i < n; i++ {
		h.tick(supervise.LevelFull)
	}
}

func TestFanoutHealthyDeliveryInOrder(t *testing.T) {
	h := newHarness(t, 2, 64, nil)
	h.run(6)
	for i, a := range h.apps {
		want := []uint64{1, 2, 3, 4, 5, 6}
		if !reflect.DeepEqual(a.gens, want) {
			t.Errorf("shard %d applied gens %v, want %v", i, a.gens, want)
		}
		// Generation 1 is Full: both shards must sweep. Later
		// generations sweep only the shard owning the flipped node and
		// note the others.
		if a.flags[0]&FlagSweep == 0 || a.flags[0]&FlagInvalidate == 0 {
			t.Errorf("shard %d full frame flags = %08b, want sweep+invalidate", i, a.flags[0])
		}
	}
	for g := uint64(2); g <= 6; g++ {
		owner := int(g % testNodes % 2)
		for i, a := range h.apps {
			fl := a.flags[g-1]
			if i == owner && fl&FlagSweep == 0 {
				t.Errorf("gen %d: owner shard %d not swept (flags %08b)", g, i, fl)
			}
			if i != owner && (fl&FlagSweep != 0 || fl&FlagNote == 0) {
				t.Errorf("gen %d: bystander shard %d flags %08b, want note without sweep", g, i, fl)
			}
		}
	}
	for _, st := range h.fo.ShardStats() {
		if st.Applied != 6 {
			t.Errorf("shard %d applied cursor = %d, want 6", st.Agent, st.Applied)
		}
		if st.Dropped+st.Duplicated+st.Delayed+st.Resyncs != 0 {
			t.Errorf("shard %d has fault counters on a healthy run: %+v", st.Agent, st)
		}
	}
}

func TestFanoutDropHealsFromRing(t *testing.T) {
	h := newHarness(t, 2, 64, func(c *Config) {
		c.DropRate = 0.4
		c.Retry = retry.Policy{MaxAttempts: 1} // every drop is a loss
	})
	h.run(20)
	h.fo.Converge()
	dropped := 0
	for _, st := range h.fo.ShardStats() {
		dropped += st.Dropped
		if st.Applied != 20 {
			t.Errorf("shard %d applied = %d, want 20 (gaps must heal from the ring)", st.Agent, st.Applied)
		}
		if st.Dropped > 0 && st.Resyncs == 0 {
			t.Errorf("shard %d dropped %d frames but never resynced", st.Agent, st.Dropped)
		}
	}
	if dropped == 0 {
		t.Fatal("40% drop rate over 40 sends injected no drops")
	}
	// In-order delivery despite gaps: each applier's gens strictly
	// ascend.
	for i, a := range h.apps {
		for j := 1; j < len(a.gens); j++ {
			if a.gens[j] <= a.gens[j-1] {
				t.Fatalf("shard %d applied out of order: %v", i, a.gens)
			}
		}
	}
}

func TestFanoutRetryAbsorbsDrops(t *testing.T) {
	h := newHarness(t, 1, 64, func(c *Config) {
		c.DropRate = 0.4
		c.Retry = retry.Policy{MaxAttempts: 6, Initial: time.Millisecond, Multiplier: 2}
	})
	h.run(20)
	st := h.fo.ShardStats()[0]
	rs := h.fo.RetryStats()
	if rs.Attempts <= rs.Ops {
		t.Errorf("retry stats show no retries: %+v", rs)
	}
	if st.Dropped != 0 {
		t.Errorf("6-attempt retry still lost %d frames at 40%% drop", st.Dropped)
	}
	if st.Applied != 20 {
		t.Errorf("applied = %d, want 20", st.Applied)
	}
}

func TestFanoutDelayAndDupConverge(t *testing.T) {
	h := newHarness(t, 2, 64, func(c *Config) {
		c.DelayRate = 0.3
		c.Delay = 3 * time.Second // lands mid-next-tick
		c.DupRate = 0.3
	})
	h.run(20)
	// One final quiet advance drains stragglers, and Converge settles
	// any frame lost on the final generation.
	h.fs.advance(h.fs.now.Add(10 * time.Second))
	h.fo.Converge()
	delayed, dup := 0, 0
	for _, st := range h.fo.ShardStats() {
		delayed += st.Delayed
		dup += st.Duplicated
		if st.Applied != 20 {
			t.Errorf("shard %d applied = %d, want 20", st.Agent, st.Applied)
		}
	}
	if delayed == 0 || dup == 0 {
		t.Fatalf("fault injection inert: delayed=%d dup=%d", delayed, dup)
	}
	for i, a := range h.apps {
		seen := map[uint64]bool{}
		for _, g := range a.gens {
			if seen[g] {
				t.Fatalf("shard %d applied generation %d twice", i, g)
			}
			seen[g] = true
		}
	}
}

func TestFanoutKillBuffersAndRejoinReplays(t *testing.T) {
	h := newHarness(t, 2, 64, nil)
	h.run(3)
	if err := h.fo.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := h.fo.Kill(1); err == nil {
		t.Error("double kill must error")
	}
	h.run(2) // generations 4, 5 buffer against the ring
	if err := h.fo.Rejoin(1); err != nil {
		t.Fatal(err)
	}
	h.run(1)
	st := h.fo.ShardStats()[1]
	if st.Applied != 6 || st.Buffered != 2 || st.Replayed != 2 || st.Resyncs != 1 {
		t.Errorf("after kill+rejoin: %+v, want applied 6, 2 buffered, 2 replayed, 1 resync", st)
	}
	if st.Killed != 1 || st.Rejoined != 1 {
		t.Errorf("event counters = killed %d rejoined %d, want 1/1", st.Killed, st.Rejoined)
	}
	// The healthy shard was untouched.
	if st0 := h.fo.ShardStats()[0]; st0.Buffered != 0 || st0.Applied != 6 {
		t.Errorf("healthy shard perturbed: %+v", st0)
	}
	if !reflect.DeepEqual(h.apps[1].gens, []uint64{1, 2, 3, 4, 5, 6}) {
		t.Errorf("shard 1 applied %v, want all six generations", h.apps[1].gens)
	}
}

func TestFanoutRejoinAfterEvictionSnapshots(t *testing.T) {
	h := newHarness(t, 2, 4, nil) // tiny ring
	h.run(2)
	if err := h.fo.Kill(0); err != nil {
		t.Fatal(err)
	}
	h.run(10) // far past the 4-deep ring
	if err := h.fo.Rejoin(0); err != nil {
		t.Fatal(err)
	}
	st := h.fo.ShardStats()[0]
	if st.SnapshotResyncs != 1 {
		t.Errorf("SnapshotResyncs = %d, want 1", st.SnapshotResyncs)
	}
	if st.Applied != 12 {
		t.Errorf("applied = %d, want 12 (snapshot at head)", st.Applied)
	}
	if len(h.apps[0].snaps) != 1 || h.apps[0].snaps[0] != 12 {
		t.Errorf("applier snapshots = %v, want [12]", h.apps[0].snaps)
	}
}

func TestFanoutDeadAgentRebalances(t *testing.T) {
	h := newHarness(t, 2, 64, func(c *Config) {
		c.DeadAfter = 4 * time.Second // two ticks
	})
	h.run(2)
	if err := h.fo.Kill(1); err != nil {
		t.Fatal(err)
	}
	h.run(1) // down 2s: not dead yet
	if st := h.fo.ShardStats()[1]; st.Dead || st.Rebalances != 0 {
		t.Fatalf("shard declared dead before DeadAfter elapsed: %+v", st)
	}
	h.run(2) // down 6s: dead, shard rebalanced to agent 0
	st := h.fo.ShardStats()[1]
	if !st.Dead {
		t.Fatal("shard not declared dead after DeadAfter")
	}
	if st.Rebalances != 1 || st.Owner != 0 || st.Epoch != 1 {
		t.Errorf("rebalance state = owner %d epoch %d rebalances %d, want 0/1/1", st.Owner, st.Epoch, st.Rebalances)
	}
	if err := h.fo.Rejoin(1); err == nil {
		t.Error("rejoin of a dead agent must error")
	}
	// The shard's machines keep running under the new owner: the
	// buffered generations replayed at rebalance and new frames flow.
	h.run(1)
	st = h.fo.ShardStats()[1]
	if st.Applied != 6 {
		t.Errorf("rebalanced shard applied = %d, want 6 (machines must not be lost)", st.Applied)
	}
	if st.FallbackApplies != 0 {
		t.Errorf("fallback applies = %d on a loopback run, want 0", st.FallbackApplies)
	}
	if got := h.fo.ShardStats()[0].Applied; got != 6 {
		t.Errorf("healthy shard applied = %d, want 6", got)
	}
	// Healthy shards never rebalance.
	if st0 := h.fo.ShardStats()[0]; st0.Rebalances != 0 || st0.Owner != 0 || st0.Epoch != 0 {
		t.Errorf("healthy shard ownership perturbed: %+v", st0)
	}
	if !reflect.DeepEqual(h.apps[1].gens, []uint64{1, 2, 3, 4, 5, 6}) {
		t.Errorf("shard 1 applied %v, want all six generations", h.apps[1].gens)
	}
}

func TestFanoutCoalesceCarriesDebt(t *testing.T) {
	h := newHarness(t, 2, 64, nil)
	h.run(2)
	h.tick(supervise.LevelCoalesce) // gen 3 coalesced on every shard
	h.tick(supervise.LevelCoalesce) // gen 4 too
	for i, a := range h.apps {
		if len(a.gens) != 2 {
			t.Fatalf("shard %d saw %d frames during coalesce, want 2 (pre-coalesce only)", i, len(a.gens))
		}
	}
	h.tick(supervise.LevelFull) // gen 5 settles the debt
	for i, a := range h.apps {
		last := a.flags[len(a.flags)-1]
		if last&FlagSweep == 0 || last&FlagInvalidate == 0 {
			t.Errorf("shard %d debt-settling frame flags = %08b, want sweep+invalidate", i, last)
		}
	}
	for _, st := range h.fo.ShardStats() {
		if st.Coalesced != 2 {
			t.Errorf("shard %d Coalesced = %d, want 2", st.Agent, st.Coalesced)
		}
		if st.Applied != 5 {
			t.Errorf("shard %d applied = %d, want 5 (coalesced frames still consume)", st.Agent, st.Applied)
		}
	}
}

func TestFanoutActivityOnlySweepsWithoutInvalidate(t *testing.T) {
	h := newHarness(t, 1, 64, nil)
	h.run(2)
	h.tick(supervise.LevelActivityOnly) // gen 3: node 3 flips, shard 0 owns all nodes
	a := h.apps[0]
	last := a.flags[len(a.flags)-1]
	if last&FlagSweep == 0 {
		t.Errorf("activity-only frame flags = %08b, want sweep", last)
	}
	if last&FlagInvalidate != 0 {
		t.Errorf("activity-only frame flags = %08b: invalidation must be withheld", last)
	}
	// The withheld invalidation is debt: the next full frame carries it.
	h.tick(supervise.LevelFull)
	last = a.flags[len(a.flags)-1]
	if last&FlagInvalidate == 0 {
		t.Errorf("post-degradation frame flags = %08b, want carried invalidate", last)
	}
	if st := h.fo.ShardStats()[0]; st.ActivityOnly != 1 {
		t.Errorf("ActivityOnly = %d, want 1", st.ActivityOnly)
	}
}

// TestFanoutDeterminism is the core promise: identical configuration and
// record streams produce identical counters, cursors and digest chains,
// fault injection and all.
func TestFanoutDeterminism(t *testing.T) {
	run := func() []ShardStats {
		h := newHarness(t, 3, 8, func(c *Config) {
			c.DropRate = 0.2
			c.DupRate = 0.2
			c.DelayRate = 0.2
			c.Delay = 3 * time.Second
			c.Retry = retry.Policy{MaxAttempts: 2, Initial: time.Millisecond, Multiplier: 2, Jitter: 0.25}
			c.DeadAfter = 30 * time.Second
		})
		h.run(5)
		h.fo.Kill(2)
		h.run(4)
		h.fo.Rejoin(2)
		h.run(11)
		h.fs.advance(h.fs.now.Add(time.Minute))
		h.fo.Converge()
		return h.fo.ShardStats()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
	if a[0].Digest == 0 || a[0].Digest == a[1].Digest {
		t.Errorf("shard digests suspicious: %016x vs %016x", a[0].Digest, a[1].Digest)
	}
}
