// Package hostlink is the coordinator↔host-agent fan-out tier: the piece
// of the paper's architecture (Fig. 2) that carries each tick's
// constellation diff and activity overlay from the one coordinator to the
// N emulation hosts. It has two halves sharing one code path:
//
//   - a loopback side, where every shard's frames are applied in-process
//     on the simulation goroutine under seeded fault injection (frame
//     drop/dup/delay, scripted agent kill/rejoin, dead-agent detection in
//     virtual time) — fully deterministic and reflected in the run report;
//
//   - a remote side, where standalone agent processes (cmd/celestial-agent)
//     follow the same frame stream over TCP as digest-verified replicas.
//     Remote delivery is wall-clock territory: acks, heartbeats, reconnect
//     resyncs and barriers never touch simulation state, so a distributed
//     run's report stays byte-identical to the single-process run's.
//
// This file is the wire protocol: length-prefixed frames over a byte
// stream, versioned via the Hello/Welcome handshake. Every frame is
//
//	uint32 payload length (little-endian) | uint8 frame type | payload
//
// and payloads are fixed-layout little-endian fields — no reflection, no
// allocation beyond the payload buffer, and a hard size cap against
// corrupt prefixes.
package hostlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ProtocolVersion is the wire protocol revision, carried in the handshake
// only. Agents and coordinators must match exactly. Version 2 added the
// commit protocol (Propose/Applied/Commit), shard routing on data frames
// (Reassign), and handshake auth.
const ProtocolVersion = 2

// VersionError reports a protocol version skew between the two ends of a
// handshake, naming both versions.
type VersionError struct {
	Got, Want uint8
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("hostlink: protocol version %d, want %d", e.Got, e.Want)
}

// MaxFramePayload caps a frame payload; a length prefix above it is
// treated as stream corruption rather than honored with a huge allocation.
// A full Starlink Gen2 snapshot (~84k links) is ~1 MiB, far under the cap.
const MaxFramePayload = 64 << 20

// FrameType discriminates the frame payloads.
type FrameType uint8

const (
	// FrameHello is the agent's opening frame: protocol version, shard
	// identity, and the replica cursor (generation + chain digest) it
	// wants to resume from.
	FrameHello FrameType = 1 + iota
	// FrameWelcome is the coordinator's handshake reply.
	FrameWelcome
	// FrameSnapshot is a full shard state: the resync path when the
	// retention ring has evicted the agent's cursor (or its digest chain
	// diverged).
	FrameSnapshot
	// FrameDiff is one generation's shard-scoped delta.
	FrameDiff
	// FrameAck reports the agent's applied cursor and chain digest.
	FrameAck
	// FrameHeartbeat keeps an idle connection warm in both directions.
	FrameHeartbeat
	// FrameBye is a clean shutdown notice.
	FrameBye
	// FramePropose asks an agent that negotiated authoritative apply to
	// run one generation's policy actions through its apply engine.
	FramePropose
	// FrameApplied is the agent's engine result for one proposal: the
	// deterministic result digest plus the engine's retry counters.
	FrameApplied
	// FrameCommit closes one proposal: the coordinator verified the
	// result digest and folded the generation into the commit chain.
	FrameCommit
	// FrameReassign transfers ownership of a shard to the receiving
	// agent (rebalancing after agent death); a Snapshot for that shard
	// follows.
	FrameReassign
)

// String names the frame type for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameSnapshot:
		return "snapshot"
	case FrameDiff:
		return "diff"
	case FrameAck:
		return "ack"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameBye:
		return "bye"
	case FramePropose:
		return "propose"
	case FrameApplied:
		return "applied"
	case FrameCommit:
		return "commit"
	case FrameReassign:
		return "reassign"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// DiffFrame flag bits. Content flags describe what the producing tick
// changed; policy flags carry the loopback applier's per-shard degradation
// decisions and are never set on frames built for the wire.
const (
	// FlagFull marks a diff with no usable base (the run's first
	// generation): a replica receiving it must resync from a snapshot.
	FlagFull uint8 = 1 << iota
	// FlagChanged is set when the producing tick's diff was non-empty
	// anywhere in the constellation — the signal that cached paths (and
	// therefore shaper programs) may be stale for every shard.
	FlagChanged
	// FlagActivity is set when this shard owns at least one node whose
	// activity flipped this generation.
	FlagActivity
	// FlagInvalidate (policy) tells the loopback applier to mark the
	// shard's cached paths stale.
	FlagInvalidate
	// FlagSweep (policy) tells the loopback applier to run the shard's
	// machine-activity sweep, including any debt carried from coalesced
	// frames.
	FlagSweep
	// FlagNote (policy) tells the loopback applier to record a host
	// update spike without sweeping (a links-only generation).
	FlagNote
)

// HelloApply is the Hello capability bit an agent sets to negotiate
// authoritative remote apply: the coordinator then sends Propose frames
// and expects Applied results through the commit protocol.
const HelloApply uint8 = 1

// Hello opens an agent connection.
type Hello struct {
	Version uint8
	Agent   int32
	// Cursor and Digest are the replica's applied generation and chain
	// digest; the coordinator replays from there when the retention ring
	// still covers it and the digest matches, else it sends a Snapshot.
	Cursor uint64
	Digest uint64
	// Flags carries capability bits (HelloApply); Token is the bearer
	// token when the coordinator's listener requires one.
	Flags uint8
	Token string
}

// Welcome acknowledges a Hello.
type Welcome struct {
	Version uint8
	Agent   int32
	// Shards is the fan-out width, so an agent can detect a shard layout
	// mismatch; Generation is the coordinator's head at handshake time.
	Shards     int32
	Generation uint64
	// Flags echoes the accepted capability bits; Seed is the fan-out
	// tier's scenario seed, from which both ends derive identical
	// per-shard apply-engine streams.
	Flags uint8
	Seed  int64
}

// LinkState is one link as a replica tracks it: endpoints in
// constellation-wide node IDs and the one-way delay in netem.DelayQuantum
// units.
type LinkState struct {
	A, B   int32
	DelayQ int32
}

// Snapshot is a full shard state at one generation. Digest is the shard's
// chain digest at that generation; a replica adopts it and folds
// subsequent DiffFrames on top. Agent routes the snapshot to the owning
// shard's replica — an agent may follow more than one shard after a
// Reassign.
type Snapshot struct {
	Agent      int32
	Generation uint64
	Digest     uint64
	T          float64
	Active     []int32
	Inactive   []int32
	Links      []LinkState
}

// DiffFrame is one generation's delta scoped to a shard: link deltas
// touching the shard's nodes and the shard's activity flips. Degraded is
// the producing tick's supervision level, as on the /diff feed. Agent
// routes the frame to the owning shard's replica; it is not folded into
// the digest chain (the chain is a function of content alone).
type DiffFrame struct {
	Agent      int32
	Generation uint64
	T          float64
	Flags      uint8
	Degraded   uint8
	// Added and Changed carry the new delay quantum; Removed entries'
	// DelayQ is -1.
	Added, Removed, Changed []LinkState
	Activated, Deactivated  []int32
}

// Ack reports an agent's applied cursor.
type Ack struct {
	Agent      int32
	Generation uint64
	Digest     uint64
}

// Heartbeat keeps the connection warm; Generation is the sender's current
// head (coordinator→agent) or applied cursor (agent→coordinator).
type Heartbeat struct {
	Generation uint64
}

// Bye announces a clean shutdown.
type Bye struct {
	Reason string
}

// Propose asks the shard's authoritative agent to run one generation's
// policy actions (the FlagInvalidate/FlagSweep/FlagNote bits the loopback
// mirror applied) through its apply engine. Flags carries exactly those
// policy bits; the content for the generation traveled in the DiffFrame.
type Propose struct {
	Agent      int32
	Generation uint64
	Flags      uint8
}

// Applied is the agent's engine result for one proposal: the
// deterministic result digest (a function of generation and policy flags,
// identical on both ends when the proposal was applied faithfully) plus
// the engine's retry counters for the generation.
type Applied struct {
	Agent      int32
	Generation uint64
	Digest     uint64
	Attempts   uint32
	Retried    uint32
}

// Commit closes one proposal: the coordinator verified the agent's result
// digest against its local mirror and folded the generation into the
// shard's commit chain. Digest is the shard's chain digest at the
// committed generation.
type Commit struct {
	Agent      int32
	Generation uint64
	Digest     uint64
}

// Reassign transfers ownership of Shard to the receiving agent: the shard
// rebalance path after agent death. Epoch is the shard's new ownership
// epoch; Generation the head at reassignment time. A Snapshot for the
// shard follows, then its diff stream.
type Reassign struct {
	Shard      int32
	Epoch      uint64
	Generation uint64
}

var (
	errShortFrame = errors.New("hostlink: truncated frame payload")
	// ErrFrameTooLarge reports a length prefix above MaxFramePayload.
	ErrFrameTooLarge = errors.New("hostlink: frame exceeds size cap")
)

// appendU16 .. appendF64 are the little-endian field writers.
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI32(b []byte, v int32) []byte  { return appendU32(b, uint32(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

// reader walks a payload with sticky truncation errors, so decoders can
// read every field and check once.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.err = errShortFrame
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.err = errShortFrame
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.err = errShortFrame
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("hostlink: %d trailing payload bytes", len(r.b)-r.off)
	}
	return nil
}

// count reads a u32 element count and bounds it against the bytes left,
// so a corrupt count cannot force a huge allocation.
func (r *reader) count(elemBytes int) int {
	n := int(r.u32())
	if r.err == nil && n*elemBytes > len(r.b)-r.off {
		r.err = errShortFrame
		return 0
	}
	return n
}

// appendStr writes a u32-length-prefixed string.
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// str reads a u32-length-prefixed string, bounded against the bytes left.
func (r *reader) str() string {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func appendIDs(b []byte, ids []int32) []byte {
	b = appendU32(b, uint32(len(ids)))
	for _, id := range ids {
		b = appendI32(b, id)
	}
	return b
}

func (r *reader) ids(dst []int32) []int32 {
	n := r.count(4)
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, r.i32())
	}
	return dst
}

func appendLinks(b []byte, ls []LinkState) []byte {
	b = appendU32(b, uint32(len(ls)))
	for _, l := range ls {
		b = appendI32(b, l.A)
		b = appendI32(b, l.B)
		b = appendI32(b, l.DelayQ)
	}
	return b
}

func (r *reader) links(dst []LinkState) []LinkState {
	n := r.count(12)
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, LinkState{A: r.i32(), B: r.i32(), DelayQ: r.i32()})
	}
	return dst
}

// appendFrame serializes one frame (envelope + payload) into buf.
func appendFrame(buf []byte, f any) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length prefix, patched below
	var t FrameType
	switch f := f.(type) {
	case *Hello:
		t = FrameHello
		buf = append(buf, byte(t), f.Version)
		buf = appendI32(buf, f.Agent)
		buf = appendU64(buf, f.Cursor)
		buf = appendU64(buf, f.Digest)
		buf = append(buf, f.Flags)
		buf = appendStr(buf, f.Token)
	case *Welcome:
		t = FrameWelcome
		buf = append(buf, byte(t), f.Version)
		buf = appendI32(buf, f.Agent)
		buf = appendI32(buf, f.Shards)
		buf = appendU64(buf, f.Generation)
		buf = append(buf, f.Flags)
		buf = appendU64(buf, uint64(f.Seed))
	case *Snapshot:
		t = FrameSnapshot
		buf = append(buf, byte(t))
		buf = appendI32(buf, f.Agent)
		buf = appendU64(buf, f.Generation)
		buf = appendU64(buf, f.Digest)
		buf = appendF64(buf, f.T)
		buf = appendIDs(buf, f.Active)
		buf = appendIDs(buf, f.Inactive)
		buf = appendLinks(buf, f.Links)
	case *DiffFrame:
		t = FrameDiff
		buf = append(buf, byte(t))
		buf = appendI32(buf, f.Agent)
		buf = appendU64(buf, f.Generation)
		buf = appendF64(buf, f.T)
		buf = append(buf, f.Flags, f.Degraded)
		buf = appendLinks(buf, f.Added)
		buf = appendLinks(buf, f.Removed)
		buf = appendLinks(buf, f.Changed)
		buf = appendIDs(buf, f.Activated)
		buf = appendIDs(buf, f.Deactivated)
	case *Ack:
		t = FrameAck
		buf = append(buf, byte(t))
		buf = appendI32(buf, f.Agent)
		buf = appendU64(buf, f.Generation)
		buf = appendU64(buf, f.Digest)
	case *Heartbeat:
		t = FrameHeartbeat
		buf = append(buf, byte(t))
		buf = appendU64(buf, f.Generation)
	case *Bye:
		t = FrameBye
		buf = append(buf, byte(t))
		buf = append(buf, f.Reason...)
	case *Propose:
		t = FramePropose
		buf = append(buf, byte(t))
		buf = appendI32(buf, f.Agent)
		buf = appendU64(buf, f.Generation)
		buf = append(buf, f.Flags)
	case *Applied:
		t = FrameApplied
		buf = append(buf, byte(t))
		buf = appendI32(buf, f.Agent)
		buf = appendU64(buf, f.Generation)
		buf = appendU64(buf, f.Digest)
		buf = appendU32(buf, f.Attempts)
		buf = appendU32(buf, f.Retried)
	case *Commit:
		t = FrameCommit
		buf = append(buf, byte(t))
		buf = appendI32(buf, f.Agent)
		buf = appendU64(buf, f.Generation)
		buf = appendU64(buf, f.Digest)
	case *Reassign:
		t = FrameReassign
		buf = append(buf, byte(t))
		buf = appendI32(buf, f.Shard)
		buf = appendU64(buf, f.Epoch)
		buf = appendU64(buf, f.Generation)
	default:
		return buf[:start], fmt.Errorf("hostlink: cannot encode %T", f)
	}
	payload := len(buf) - start - 5 // sans prefix and type byte
	if payload > MaxFramePayload {
		return buf[:start], ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(payload+1)) // +1: type byte
	return buf, nil
}

// WriteFrame serializes f into buf (reusing its capacity) and writes the
// whole frame to w in one Write call. It returns the (possibly grown)
// buffer for reuse.
func WriteFrame(w io.Writer, buf []byte, f any) ([]byte, error) {
	buf, err := appendFrame(buf[:0], f)
	if err != nil {
		return buf, err
	}
	_, err = w.Write(buf)
	return buf, err
}

// ReadFrame reads one frame from r, reusing buf for the payload, and
// decodes it into a freshly allocated frame value. It returns the decoded
// frame, the (possibly grown) buffer, and the first error encountered.
func ReadFrame(r io.Reader, buf []byte) (any, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 {
		return nil, buf, errShortFrame
	}
	if n-1 > MaxFramePayload {
		return nil, buf, ErrFrameTooLarge
	}
	payload := int(n) - 1
	if cap(buf) < payload {
		buf = make([]byte, payload)
	}
	buf = buf[:payload]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, err
	}
	f, err := decodeFrame(FrameType(hdr[4]), buf)
	return f, buf, err
}

// decodeFrame decodes a payload of a known type.
func decodeFrame(t FrameType, payload []byte) (any, error) {
	rd := &reader{b: payload}
	switch t {
	case FrameHello:
		f := &Hello{Version: rd.u8(), Agent: rd.i32(), Cursor: rd.u64(), Digest: rd.u64(), Flags: rd.u8()}
		f.Token = rd.str()
		return f, rd.done()
	case FrameWelcome:
		f := &Welcome{Version: rd.u8(), Agent: rd.i32(), Shards: rd.i32(), Generation: rd.u64(), Flags: rd.u8(), Seed: int64(rd.u64())}
		return f, rd.done()
	case FrameSnapshot:
		f := &Snapshot{Agent: rd.i32(), Generation: rd.u64(), Digest: rd.u64(), T: rd.f64()}
		f.Active = rd.ids(nil)
		f.Inactive = rd.ids(nil)
		f.Links = rd.links(nil)
		return f, rd.done()
	case FrameDiff:
		f := &DiffFrame{Agent: rd.i32(), Generation: rd.u64(), T: rd.f64(), Flags: rd.u8(), Degraded: rd.u8()}
		f.Added = rd.links(nil)
		f.Removed = rd.links(nil)
		f.Changed = rd.links(nil)
		f.Activated = rd.ids(nil)
		f.Deactivated = rd.ids(nil)
		return f, rd.done()
	case FrameAck:
		f := &Ack{Agent: rd.i32(), Generation: rd.u64(), Digest: rd.u64()}
		return f, rd.done()
	case FrameHeartbeat:
		f := &Heartbeat{Generation: rd.u64()}
		return f, rd.done()
	case FrameBye:
		return &Bye{Reason: string(payload)}, nil
	case FramePropose:
		f := &Propose{Agent: rd.i32(), Generation: rd.u64(), Flags: rd.u8()}
		return f, rd.done()
	case FrameApplied:
		f := &Applied{Agent: rd.i32(), Generation: rd.u64(), Digest: rd.u64(), Attempts: rd.u32(), Retried: rd.u32()}
		return f, rd.done()
	case FrameCommit:
		f := &Commit{Agent: rd.i32(), Generation: rd.u64(), Digest: rd.u64()}
		return f, rd.done()
	case FrameReassign:
		f := &Reassign{Shard: rd.i32(), Epoch: rd.u64(), Generation: rd.u64()}
		return f, rd.done()
	default:
		return nil, fmt.Errorf("hostlink: unknown frame type %d", uint8(t))
	}
}

// FNV-1a, folded 64 bits at a time: the digest chain primitive.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fold64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// ChainSeed is the digest chain's starting value (before any generation
// has been folded).
const ChainSeed uint64 = fnvOffset

// FoldDiff folds one generation's shard-scoped content into a running
// chain digest. Only content is folded — the policy flag bits and the
// FlagChanged/FlagActivity summaries are derivable, and loopback delivery
// decisions must not perturb the chain — so a replica folding the frames
// it receives lands on exactly the digest the coordinator computed for
// that shard. Section tags separate the variable-length field groups.
func FoldDiff(chain uint64, f *DiffFrame) uint64 {
	h := fold64(chain, f.Generation)
	h = fold64(h, math.Float64bits(f.T))
	full := uint64(0)
	if f.Flags&FlagFull != 0 {
		full = 1
	}
	h = fold64(h, full)
	h = fold64(h, uint64(f.Degraded))
	h = fold64(h, 0xA1)
	for _, l := range f.Added {
		h = foldLink(h, l)
	}
	h = fold64(h, 0xA2)
	for _, l := range f.Removed {
		h = foldLink(h, l)
	}
	h = fold64(h, 0xA3)
	for _, l := range f.Changed {
		h = foldLink(h, l)
	}
	h = fold64(h, 0xA4)
	for _, id := range f.Activated {
		h = fold64(h, uint64(uint32(id)))
	}
	h = fold64(h, 0xA5)
	for _, id := range f.Deactivated {
		h = fold64(h, uint64(uint32(id)))
	}
	return fold64(h, 0xAF)
}

func foldLink(h uint64, l LinkState) uint64 {
	h = fold64(h, uint64(uint32(l.A)))
	h = fold64(h, uint64(uint32(l.B)))
	return fold64(h, uint64(uint32(l.DelayQ)))
}
