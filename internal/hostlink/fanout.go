package hostlink

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"celestial/internal/constellation"
	"celestial/internal/retry"
	"celestial/internal/rng"
	"celestial/internal/supervise"
)

// Defaults for the wall-clock knobs. DefaultHeartbeat doubles as the
// information service's SSE keepalive default so one setting sizes both
// follower channels.
const (
	DefaultHeartbeat    = 15 * time.Second
	DefaultWriteTimeout = 10 * time.Second
)

// Record is one retained generation as the fan-out tier consumes it: a
// flat view of the coordinator's DiffRecord plus its generation number.
// Slices are borrowed from the retention ring and must not be mutated.
type Record struct {
	Generation             uint64
	T                      float64
	Full                   bool
	Degraded               uint8
	Added, Removed         []constellation.LinkDelta
	DelayChanged           []constellation.LinkDelta
	Activated, Deactivated []int32
}

// empty reports whether the record carries no change at emulation
// granularity (a Full record counts as changed).
func (r *Record) empty() bool {
	return !r.Full && len(r.Added) == 0 && len(r.Removed) == 0 &&
		len(r.DelayChanged) == 0 && len(r.Activated) == 0 && len(r.Deactivated) == 0
}

// Applier consumes a shard's frame stream. The loopback applier translates
// policy flags into path invalidation and machine-activity sweeps on the
// in-process hosts; a remote replica rebuilds shard state from content.
type Applier interface {
	ApplySnapshot(s *Snapshot) error
	ApplyDiff(f *DiffFrame) error
}

// Config wires a Fanout to its producer. All callbacks are required
// unless noted.
type Config struct {
	// Shards is the fan-out width; ShardOf maps a constellation node ID
	// to its owning shard. Machines[i] is shard i's machine count
	// (status/report only).
	Shards   int
	ShardOf  func(node int) int
	Machines []int

	// Appliers[i] is shard i's loopback applier.
	Appliers []Applier

	// Now and After are the virtual clock: Now reads the simulation
	// time, After schedules a callback on the simulation goroutine.
	// They drive delayed-frame delivery and dead-agent detection, so
	// frame faults stay deterministic scenario events.
	Now   func() time.Time
	After func(d time.Duration, fn func()) error

	// Head returns the newest generation; Updated returns a channel
	// closed when it advances; Replay returns the retained records
	// after a cursor (nil, false when the ring has evicted it);
	// SnapshotAt builds a shard's full state at head. These mirror the
	// /diff information service's contract so agents resync exactly
	// like diff clients.
	Head     func() uint64
	Updated  func() <-chan struct{}
	Replay   func(since uint64) ([]Record, bool)
	Snapshot func(shard int) (*Snapshot, error)

	// Ladder configures the per-shard follower degradation ladder.
	Ladder supervise.FollowerConfig

	// Token, when non-empty, is the bearer token remote agents must
	// present in their Hello frame; plaintext loopback runs leave it
	// empty. Optional.
	Token string

	// ApplyWindow bounds commit-protocol proposals in flight per shard;
	// zero adopts 1 (fully serialized, the deterministic default).
	ApplyWindow int

	// Retry is the wire-send retry policy (virtual backoff); Seed feeds
	// the per-shard jitter and fault-injection streams. DropRate,
	// DupRate and DelayRate inject frame loss, duplication and delay
	// (by Delay) into loopback sends.
	Retry     retry.Policy
	Seed      int64
	DropRate  float64
	DupRate   float64
	DelayRate float64
	Delay     time.Duration

	// DeadAfter declares a down agent permanently dead after this much
	// virtual time; its shard is then rebalanced to a surviving agent
	// (or the coordinator's loopback) instead of failing its machines.
	// Zero disables the dead path.
	DeadAfter time.Duration

	// Heartbeat and WriteTimeout are wall-clock knobs for remote
	// connections; zero means the package defaults.
	Heartbeat    time.Duration
	WriteTimeout time.Duration
}

// ShardStats is one shard's deterministic delivery counters — everything
// here is a pure function of the scenario (seeded faults, scripted
// kill/rejoin, virtual clock) and safe to include in the run report.
type ShardStats struct {
	Agent    int `json:"agent"`
	Machines int `json:"machines"`
	// Frames counts generations offered to the shard; Applied is the
	// shard's consumed cursor; Digest is the shard's coordinator-side
	// chain digest at the newest generation (the value a fully caught-up
	// replica must ack).
	Frames  int    `json:"frames"`
	Applied uint64 `json:"applied"`
	Digest  uint64 `json:"digest"`
	// Coalesced and ActivityOnly count frames handled at a degraded
	// ladder rung.
	Coalesced    int `json:"coalesced"`
	ActivityOnly int `json:"activity_only"`
	// Dropped counts frames lost after the retry policy gave up;
	// Duplicated injected duplicates (discarded on delivery); Delayed
	// frames that arrived late.
	Dropped    int `json:"dropped"`
	Duplicated int `json:"duplicated"`
	Delayed    int `json:"delayed"`
	// Buffered counts generations skipped while the agent was down
	// (retained in the ring); Replayed frames recovered from the ring;
	// Resyncs ring replays (gap recovery and rejoins);
	// SnapshotResyncs full-state resyncs after ring eviction.
	Buffered        int `json:"buffered"`
	Replayed        int `json:"replayed"`
	Resyncs         int `json:"resyncs"`
	SnapshotResyncs int `json:"snapshot_resyncs"`
	// Killed/Rejoined count scripted agent-kill/agent-rejoin events;
	// Dead is set when the agent was declared permanently dead.
	Killed   int  `json:"killed"`
	Rejoined int  `json:"rejoined"`
	Down     bool `json:"down"`
	Dead     bool `json:"dead"`
	// Owner is the agent currently applying this shard (its own agent
	// until a rebalance; -1 means the coordinator's loopback); Epoch
	// counts ownership changes and Rebalances dead-agent reassignments.
	Owner      int    `json:"owner"`
	Epoch      uint64 `json:"epoch"`
	Rebalances int    `json:"rebalances"`
	// FallbackApplies counts generations the coordinator applied locally
	// because a remote agent's commit-protocol window timed out or its
	// result digest mismatched — zero whenever remotes keep up.
	FallbackApplies int `json:"fallback_applies"`
	// Escalations/Recoveries are the follower ladder's rung moves.
	Escalations int `json:"escalations"`
	Recoveries  int `json:"recoveries"`
	// ApplyErrors counts frames whose loopback application failed.
	ApplyErrors int `json:"apply_errors"`
}

// shard is one agent's coordinator-side delivery state.
type shard struct {
	id      int
	applier Applier
	ladder  *supervise.Follower

	// retryRnd jitters wire-send backoff; faultRnd draws frame faults.
	// Both are per-shard streams so shard layouts do not perturb each
	// other. rndFn is retryRnd.Float64 bound once (retry.Do takes a
	// func; binding per send would allocate).
	retryRnd *rng.Stream
	faultRnd *rng.Stream
	rndFn    func() float64
	sendOp   func() error

	// scratch is the shard's frame for the current generation, built by
	// Advance and reused across ticks; it is cloned only when delivery
	// is deferred (delay faults, queued backlog).
	scratch DiffFrame

	applied uint64 // consumed cursor
	chain   uint64 // digest chain at head (coordinator side)
	level   supervise.Level

	// pendingInvalidate/pendingActivity carry coalesced debt exactly
	// like the coordinator's former global flags, per shard.
	pendingInvalidate bool
	pendingActivity   bool

	// queue holds deferred frames (delay faults) in arrival order.
	queue []queuedFrame

	down      bool
	dead      bool
	downSince time.Time

	// owner is the agent applying this shard on the virtual plane (its
	// own id until a rebalance, -1 for the coordinator's loopback);
	// epoch counts ownership changes.
	owner int
	epoch uint64

	stats      ShardStats
	retryStats retry.Stats
	lastErr    error
}

type queuedFrame struct {
	f   *DiffFrame
	due time.Time
}

// Fanout is the coordinator-side fan-out tier: it owns per-shard delivery
// state, applies frames through the loopback appliers on the simulation
// goroutine, and (optionally) serves the same frame stream to remote
// agents over TCP.
type Fanout struct {
	cfg    Config
	shards []*shard
	// level is the global watchdog rung for the generation currently
	// being distributed; the effective per-shard level is the max of it
	// and the shard ladder's rung.
	level supervise.Level

	// mu guards the digest rings, head, and remote bookkeeping — state
	// shared with remote writer goroutines. Loopback delivery state is
	// owned by the simulation goroutine and needs no lock.
	mu sync.Mutex
	// digests[shard] is a ring of (generation, chain digest) entries
	// parallel to the coordinator's diff retention ring. results[shard]
	// is the commit protocol's parallel ring: the loopback engine's
	// result digest and effective policy flags per generation, the value
	// a remote agent's Applied frame is verified against.
	digests   [][]digestEntry
	results   [][]resultEntry
	retention int
	head      uint64

	remotes   map[int]*remote
	ackNotify chan struct{}
	closed    bool
	// remoteOwner[shard] is the agent serving the shard's remote stream
	// (wall-clock plane, identity while every agent is attached);
	// remoteEpoch counts reassignments and deadShard marks shards whose
	// agent died on the virtual plane (never reclaimable). fallback and
	// applyMismatch are the commit protocol's wall-clock counters,
	// indexed by shard.
	remoteOwner   []int
	remoteEpoch   []uint64
	deadShard     []bool
	fallback      []int
	applyMismatch []int
	// statsSnap is the per-tick copy of the shard counters published for
	// concurrent readers (the /agents endpoint); the live counters are
	// owned by the simulation goroutine.
	statsSnap []ShardStats
}

type digestEntry struct {
	gen    uint64
	digest uint64
}

// resultEntry is one generation's loopback apply result: the engine's
// commit digest and the effective policy flags it executed. flags==0
// distinguishes "applied with no work" from an empty slot (gen match).
type resultEntry struct {
	gen    uint64
	digest uint64
	flags  uint8
}

// splitmix scatters a seed into decorrelated per-shard streams (the same
// construction the scenario runner uses for flow seeds).
func splitmix(seed int64, idx uint64) int64 {
	z := uint64(seed) + (idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

var errFrameDropped = errors.New("hostlink: injected frame drop")

// New builds a Fanout. Retention must match the producer's diff retention
// ring capacity.
func New(cfg Config, retention int) (*Fanout, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("hostlink: %d shards", cfg.Shards)
	}
	if len(cfg.Appliers) != cfg.Shards {
		return nil, fmt.Errorf("hostlink: %d appliers for %d shards", len(cfg.Appliers), cfg.Shards)
	}
	if cfg.ShardOf == nil || cfg.Now == nil || cfg.After == nil ||
		cfg.Head == nil || cfg.Updated == nil || cfg.Replay == nil || cfg.Snapshot == nil {
		return nil, errors.New("hostlink: missing required callback")
	}
	if retention <= 0 {
		return nil, fmt.Errorf("hostlink: retention %d", retention)
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.ApplyWindow <= 0 {
		cfg.ApplyWindow = 1
	}
	fo := &Fanout{
		cfg:           cfg,
		shards:        make([]*shard, cfg.Shards),
		retention:     retention,
		digests:       make([][]digestEntry, cfg.Shards),
		results:       make([][]resultEntry, cfg.Shards),
		remotes:       make(map[int]*remote),
		ackNotify:     make(chan struct{}),
		remoteOwner:   make([]int, cfg.Shards),
		remoteEpoch:   make([]uint64, cfg.Shards),
		deadShard:     make([]bool, cfg.Shards),
		fallback:      make([]int, cfg.Shards),
		applyMismatch: make([]int, cfg.Shards),
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			id:       i,
			owner:    i,
			applier:  cfg.Appliers[i],
			ladder:   supervise.NewFollower(cfg.Ladder),
			retryRnd: rng.New(splitmix(cfg.Seed, uint64(i))),
			faultRnd: rng.New(splitmix(cfg.Seed, uint64(i)+0x10000)),
			chain:    ChainSeed,
		}
		fo.remoteOwner[i] = i
		s.rndFn = s.retryRnd.Float64
		drop, rnd := cfg.DropRate, s.faultRnd
		if drop > 0 {
			s.sendOp = func() error {
				if rnd.Float64() < drop {
					return retry.Transient(errFrameDropped)
				}
				return nil
			}
		} else {
			s.sendOp = sendOK
		}
		if i < len(cfg.Machines) {
			s.stats.Machines = cfg.Machines[i]
		}
		fo.digests[i] = make([]digestEntry, retention)
		fo.results[i] = make([]resultEntry, retention)
		fo.shards[i] = s
	}
	return fo, nil
}

func sendOK() error { return nil }

// Shards returns the fan-out width.
func (fo *Fanout) Shards() int { return fo.cfg.Shards }

// Advance folds one new generation into every shard's digest chain and
// builds the per-shard scratch frames. The producer must call it for
// every generation, in order, before waking replay readers — the digest
// ring is what remote writers verify acks against.
func (fo *Fanout) Advance(rec Record) {
	for _, s := range fo.shards {
		fo.buildFrameInto(&s.scratch, s.id, &rec)
		s.chain = FoldDiff(s.chain, &s.scratch)
	}
	fo.mu.Lock()
	fo.head = rec.Generation
	for _, s := range fo.shards {
		fo.digests[s.id][rec.Generation%uint64(fo.retention)] = digestEntry{rec.Generation, s.chain}
	}
	fo.mu.Unlock()
}

// digestAt returns shard's chain digest at gen, if the digest ring still
// holds it.
func (fo *Fanout) digestAt(shard int, gen uint64) (uint64, bool) {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	e := fo.digests[shard][gen%uint64(fo.retention)]
	return e.digest, e.gen == gen && gen > 0
}

// buildFrameInto fills dst with rec's content scoped to one shard,
// reusing dst's slices. Link deltas are scoped by their source endpoint
// (the side whose host programs the shaper); activity flips by ownership.
// FlagChanged is global — a link changing anywhere can move any path's
// latency — while FlagActivity is per-shard.
func (fo *Fanout) buildFrameInto(dst *DiffFrame, shard int, rec *Record) {
	dst.Generation = rec.Generation
	dst.T = rec.T
	dst.Degraded = rec.Degraded
	dst.Flags = 0
	if rec.Full {
		dst.Flags |= FlagFull
	}
	if !rec.empty() {
		dst.Flags |= FlagChanged
	}
	dst.Added = appendShardLinks(dst.Added[:0], rec.Added, fo.cfg.ShardOf, shard)
	dst.Removed = appendShardLinks(dst.Removed[:0], rec.Removed, fo.cfg.ShardOf, shard)
	dst.Changed = appendShardLinks(dst.Changed[:0], rec.DelayChanged, fo.cfg.ShardOf, shard)
	dst.Activated = appendShardIDs(dst.Activated[:0], rec.Activated, fo.cfg.ShardOf, shard)
	dst.Deactivated = appendShardIDs(dst.Deactivated[:0], rec.Deactivated, fo.cfg.ShardOf, shard)
	if len(dst.Activated) > 0 || len(dst.Deactivated) > 0 {
		dst.Flags |= FlagActivity
	}
}

func appendShardLinks(dst []LinkState, deltas []constellation.LinkDelta, shardOf func(int) int, shard int) []LinkState {
	for _, d := range deltas {
		if shardOf(d.A) != shard && shardOf(d.B) != shard {
			continue
		}
		dst = append(dst, LinkState{A: int32(d.A), B: int32(d.B), DelayQ: d.NewQ})
	}
	return dst
}

func appendShardIDs(dst []int32, ids []int32, shardOf func(int) int, shard int) []int32 {
	for _, id := range ids {
		if shardOf(int(id)) == shard {
			dst = append(dst, id)
		}
	}
	return dst
}

// cloneFrame deep-copies a frame for deferred delivery.
func cloneFrame(f *DiffFrame) *DiffFrame {
	c := *f
	c.Added = append([]LinkState(nil), f.Added...)
	c.Removed = append([]LinkState(nil), f.Removed...)
	c.Changed = append([]LinkState(nil), f.Changed...)
	c.Activated = append([]int32(nil), f.Activated...)
	c.Deactivated = append([]int32(nil), f.Deactivated...)
	return &c
}

// Distribute delivers the generation prepared by the last Advance call to
// every shard's loopback applier, under the per-shard fault pipeline and
// degradation ladder. level is the global watchdog rung for this tick.
// Must run on the simulation goroutine, after Advance.
func (fo *Fanout) Distribute(level supervise.Level) error {
	fo.level = level
	now := fo.cfg.Now()
	var errs []error
	for _, s := range fo.shards {
		s.stats.Frames++
		if s.down {
			s.stats.Buffered++
			fo.maybeDead(s, now)
			continue
		}
		// Lag before this frame: generations produced but not consumed.
		lag := int(s.scratch.Generation - 1 - s.applied)
		if lag < 0 {
			lag = 0
		}
		s.level = s.ladder.Observe(lag)
		if err := fo.send(s, &s.scratch); err != nil {
			errs = append(errs, err)
		}
	}
	fo.publishStats()
	return errors.Join(errs...)
}

// publishStats copies the shard counters under fo.mu for concurrent
// status readers. The slice is reused; after warmup this is copy-only.
func (fo *Fanout) publishStats() {
	fo.mu.Lock()
	if fo.statsSnap == nil {
		fo.statsSnap = make([]ShardStats, len(fo.shards))
	}
	for i, s := range fo.shards {
		st := s.stats
		st.Agent = s.id
		st.Applied = s.applied
		st.Digest = s.chain
		st.Owner = s.owner
		st.Epoch = s.epoch
		st.FallbackApplies = fo.fallback[s.id]
		ls := s.ladder.Stats()
		st.Escalations = ls.Escalations
		st.Recoveries = ls.Recoveries
		fo.statsSnap[i] = st
	}
	fo.mu.Unlock()
}

// send runs the wire-send fault pipeline for one frame: drop injection
// under the retry policy (virtual backoff), then delay and duplicate
// draws, then delivery or enqueueing.
func (fo *Fanout) send(s *shard, f *DiffFrame) error {
	res := retry.Do(fo.cfg.Retry, s.rndFn, s.sendOp)
	s.retryStats.Record(res)
	if res.Err != nil {
		// The frame is lost; the gap is healed from the retention ring
		// when the next frame lands.
		s.stats.Dropped++
		return nil
	}
	delayed := false
	if fo.cfg.DelayRate > 0 && s.faultRnd.Float64() < fo.cfg.DelayRate {
		delayed = true
		s.stats.Delayed++
	}
	dup := fo.cfg.DupRate > 0 && s.faultRnd.Float64() < fo.cfg.DupRate
	if dup {
		s.stats.Duplicated++
	}
	var err error
	if delayed {
		err = fo.defer_(s, f, fo.cfg.Delay)
	} else if len(s.queue) > 0 {
		// Order behind frames still in flight.
		err = fo.defer_(s, f, 0)
	} else {
		fo.deliver(s, f)
	}
	if dup {
		// The duplicate ships on the same schedule; delivery discards it
		// by cursor.
		if delayed {
			err = errors.Join(err, fo.defer_(s, f, fo.cfg.Delay))
		} else if len(s.queue) > 0 {
			err = errors.Join(err, fo.defer_(s, f, 0))
		} else {
			fo.deliver(s, f)
		}
	}
	return err
}

// defer_ schedules a cloned frame for later delivery on the simulation
// clock.
func (fo *Fanout) defer_(s *shard, f *DiffFrame, d time.Duration) error {
	qf := queuedFrame{f: cloneFrame(f), due: fo.cfg.Now().Add(d)}
	s.queue = append(s.queue, qf)
	return fo.cfg.After(d, func() {
		fo.drainDue(s)
	})
}

// drainDue delivers every queued frame whose due time has arrived, in
// arrival order.
func (fo *Fanout) drainDue(s *shard) {
	now := fo.cfg.Now()
	for len(s.queue) > 0 {
		qf := s.queue[0]
		if qf.due.After(now) {
			return
		}
		s.queue = s.queue[1:]
		if len(s.queue) == 0 {
			// Let the backing array go once drained so retained clones
			// do not pin each other.
			s.queue = nil
		}
		if !s.down {
			fo.deliver(s, qf.f)
		}
	}
}

// deliver hands one frame to the shard pipeline: duplicates are discarded
// by cursor, gaps healed from the retention ring, in-order frames applied
// under the shard's effective degradation level.
func (fo *Fanout) deliver(s *shard, f *DiffFrame) {
	switch {
	case f.Generation <= s.applied:
		return // duplicate or superseded by a resync
	case f.Generation != s.applied+1:
		fo.resync(s)
	default:
		fo.applyFrame(s, f)
		s.applied = f.Generation
	}
}

// resync heals a shard whose next in-order frame is missing: replay the
// retained generations after its cursor, or adopt a full snapshot when
// the ring has evicted the cursor.
func (fo *Fanout) resync(s *shard) {
	recs, ok := fo.cfg.Replay(s.applied)
	if ok {
		s.stats.Resyncs++
		var frame DiffFrame
		for i := range recs {
			fo.buildFrameInto(&frame, s.id, &recs[i])
			fo.applyFrame(s, &frame)
			s.applied = recs[i].Generation
			s.stats.Replayed++
		}
		return
	}
	// The ring no longer covers the cursor: full-state resync, exactly
	// like a /diff client that fell too far behind.
	s.stats.SnapshotResyncs++
	snap, err := fo.cfg.Snapshot(s.id)
	if err != nil {
		s.stats.ApplyErrors++
		s.lastErr = err
		return
	}
	if d, ok := fo.digestAt(s.id, snap.Generation); ok {
		snap.Digest = d
	}
	if err := s.applier.ApplySnapshot(snap); err != nil {
		s.stats.ApplyErrors++
		s.lastErr = err
		return
	}
	fo.recordResult(s, snap.Generation, FlagInvalidate|FlagSweep)
	// A snapshot is authoritative: all carried debt is settled by it.
	s.applied = snap.Generation
	s.pendingInvalidate = false
	s.pendingActivity = false
}

// recordResult stores one generation's loopback apply result in the
// commit-protocol ring — the digest a remote agent's Applied frame for
// that generation must match.
func (fo *Fanout) recordResult(s *shard, gen uint64, flags uint8) {
	ra, ok := s.applier.(ResultApplier)
	if !ok {
		return
	}
	res := ra.LastResult()
	fo.mu.Lock()
	fo.results[s.id][gen%uint64(fo.retention)] = resultEntry{gen: gen, digest: res.Digest, flags: flags}
	fo.mu.Unlock()
}

// resultAt returns shard's commit-protocol result at gen, if the ring
// still holds it.
func (fo *Fanout) resultAt(shard int, gen uint64) (resultEntry, bool) {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	e := fo.results[shard][gen%uint64(fo.retention)]
	return e, e.gen == gen && gen > 0
}

// applyFrame runs the per-shard degradation policy — the sharded version
// of the coordinator's former global distribute step — and hands the
// effective frame to the applier with policy flags set.
func (fo *Fanout) applyFrame(s *shard, f *DiffFrame) {
	level := s.level
	if fo.level > level {
		level = fo.level
	}
	needInvalidate := f.Flags&FlagChanged != 0 || s.pendingInvalidate
	needActivity := f.Flags&(FlagActivity|FlagFull) != 0 || s.pendingActivity
	eff := *f
	if level >= supervise.LevelCoalesce {
		s.pendingInvalidate = needInvalidate
	} else if needInvalidate {
		eff.Flags |= FlagInvalidate
		s.pendingInvalidate = false
	}
	sweep := false
	switch {
	case level == supervise.LevelCoalesce:
		s.pendingActivity = needActivity
		s.stats.Coalesced++
	case needActivity:
		eff.Flags |= FlagSweep
		s.pendingActivity = false
		sweep = true
	case f.Flags&FlagChanged != 0 && level < supervise.LevelCoalesce:
		eff.Flags |= FlagNote
	}
	if level == supervise.LevelActivityOnly {
		s.stats.ActivityOnly++
	}
	if eff.Flags&(FlagInvalidate|FlagSweep|FlagNote) == 0 {
		return // nothing to do this generation
	}
	defer fo.recordResult(s, eff.Generation, eff.Flags&(FlagInvalidate|FlagSweep|FlagNote))
	if err := s.applier.ApplyDiff(&eff); err != nil {
		s.stats.ApplyErrors++
		s.lastErr = err
		if sweep {
			// The sweep did not complete; carry it so the next frame
			// converges the shard.
			s.pendingActivity = true
		}
	}
}

// Converge drains every live shard's in-flight frames and heals cursor
// gaps from the ring — the end-of-run settlement, so a frame lost on the
// final generation cannot leave a shard behind head in the report. Must
// run on the simulation goroutine after the last Distribute.
func (fo *Fanout) Converge() {
	head := fo.cfg.Head()
	for _, s := range fo.shards {
		if s.down {
			continue
		}
		for len(s.queue) > 0 {
			qf := s.queue[0]
			s.queue = s.queue[1:]
			fo.deliver(s, qf.f)
		}
		s.queue = nil
		if s.applied < head {
			fo.resync(s)
		}
	}
	fo.publishStats()
}

// maybeDead promotes a down shard to permanently dead once DeadAfter
// virtual time has passed, then rebalances its shard to a surviving
// agent (or the coordinator's loopback) instead of failing its machines.
func (fo *Fanout) maybeDead(s *shard, now time.Time) {
	if fo.cfg.DeadAfter <= 0 || s.dead || !s.down {
		return
	}
	if now.Sub(s.downSince) < fo.cfg.DeadAfter {
		return
	}
	s.dead = true
	s.stats.Dead = true
	s.queue = nil
	fo.rebalance(s)
}

// rebalance reassigns a dead agent's shard: the shard's machines keep
// running, applied under a new owner. Deterministic — the new owner is
// the lowest surviving agent (or -1, the coordinator's loopback), and
// the catch-up resync replays the ring exactly like a rejoin. Must run
// on the simulation goroutine.
func (fo *Fanout) rebalance(s *shard) {
	s.down = false
	s.stats.Down = false
	s.owner = fo.survivorFor(s.id)
	s.epoch++
	s.stats.Rebalances++
	// The wall-clock plane follows: the dead agent's remote stream (if
	// any) moves to an attached survivor and can never be reclaimed.
	fo.mu.Lock()
	fo.deadShard[s.id] = true
	fo.reassignRemoteLocked(s.id)
	fo.mu.Unlock()
	fo.wakeAcks()
	// Heal the generations buffered while the agent was down, exactly
	// like a rejoin: ring replay, snapshot past eviction.
	if s.applied < fo.cfg.Head() {
		fo.resync(s)
	}
}

// survivorFor picks the lowest live agent other than shard, or -1 when
// none survives (the coordinator's loopback applies the shard itself).
func (fo *Fanout) survivorFor(shard int) int {
	for _, c := range fo.shards {
		if c.id != shard && !c.dead {
			return c.id
		}
	}
	return -1
}

// Kill marks an agent down (a scripted agent-kill event): its frames
// buffer against the retention ring until it rejoins or is declared dead.
func (fo *Fanout) Kill(agent int) error {
	s, err := fo.shardByID(agent)
	if err != nil {
		return err
	}
	if s.dead {
		return fmt.Errorf("hostlink: agent %d is dead", agent)
	}
	if s.down {
		return fmt.Errorf("hostlink: agent %d is already down", agent)
	}
	s.down = true
	s.stats.Down = true
	s.downSince = fo.cfg.Now()
	// In-flight frames die with the connection.
	s.queue = nil
	s.stats.Killed++
	return nil
}

// Rejoin brings a down agent back (a scripted agent-rejoin event) and
// resyncs it exactly like a reconnecting /diff client: ring replay when
// its cursor is still retained, full snapshot otherwise.
func (fo *Fanout) Rejoin(agent int) error {
	s, err := fo.shardByID(agent)
	if err != nil {
		return err
	}
	if s.dead {
		return fmt.Errorf("hostlink: agent %d is dead and cannot rejoin", agent)
	}
	if !s.down {
		return fmt.Errorf("hostlink: agent %d is not down", agent)
	}
	s.down = false
	s.stats.Down = false
	s.stats.Rejoined++
	if s.applied < fo.cfg.Head() {
		fo.resync(s)
	}
	return nil
}

func (fo *Fanout) shardByID(agent int) (*shard, error) {
	if agent < 0 || agent >= len(fo.shards) {
		return nil, fmt.Errorf("hostlink: agent %d out of range [0, %d)", agent, len(fo.shards))
	}
	return fo.shards[agent], nil
}

// ShardStats returns every shard's deterministic delivery counters, in
// shard order. Must be called from the simulation goroutine (or with it
// quiescent).
func (fo *Fanout) ShardStats() []ShardStats {
	out := make([]ShardStats, len(fo.shards))
	fo.mu.Lock()
	fallback := append([]int(nil), fo.fallback...)
	fo.mu.Unlock()
	for i, s := range fo.shards {
		st := s.stats
		st.Agent = s.id
		st.Applied = s.applied
		st.Digest = s.chain
		st.Owner = s.owner
		st.Epoch = s.epoch
		st.FallbackApplies = fallback[i]
		ls := s.ladder.Stats()
		st.Escalations = ls.Escalations
		st.Recoveries = ls.Recoveries
		out[i] = st
	}
	return out
}

// RetryStats aggregates the wire-send retry counters across shards.
func (fo *Fanout) RetryStats() retry.Stats {
	var agg retry.Stats
	for _, s := range fo.shards {
		agg.Add(s.retryStats)
	}
	return agg
}

// ApplyErrors returns the total failed frame applications and the most
// recent error.
func (fo *Fanout) ApplyErrors() (int, error) {
	n := 0
	var last error
	for _, s := range fo.shards {
		n += s.stats.ApplyErrors
		if s.lastErr != nil {
			last = s.lastErr
		}
	}
	return n, last
}
