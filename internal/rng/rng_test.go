package rng

import (
	"math"
	"testing"
)

func TestDeterministicAndSeedSensitive(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if New(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d times", same)
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := New(7)
	for i := 0; i < 123; i++ {
		s.Uint64()
	}
	saved := s.State()
	want := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	r := &Stream{}
	r.SetState(saved)
	for i, w := range want {
		if g := r.Uint64(); g != w {
			t.Fatalf("restored stream draw %d = %d, want %d", i, g, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0, 1)", v)
		}
	}
}

func TestExpFloat64MeanAndFinite(t *testing.T) {
	s := New(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("ExpFloat64 = %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.98 || mean > 1.02 {
		t.Errorf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestForkIndependence(t *testing.T) {
	p := New(9)
	c1 := p.Fork()
	c2 := p.Fork()
	if c1.State() == c2.State() {
		t.Fatal("sibling forks share state")
	}
	// Forking advanced the parent deterministically.
	q := New(9)
	q.Uint64()
	q.Uint64()
	if p.State() != q.State() {
		t.Error("fork did not advance parent like two draws")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d values", len(seen))
	}
}
