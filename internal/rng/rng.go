// Package rng provides a small deterministic random stream whose complete
// state is a single exportable word. The scenario engine uses it for every
// random process it must checkpoint: unlike math/rand.Rand — whose internal
// state cannot be read back — a Stream can be persisted in a crash-safe
// checkpoint file and later compared against the state a deterministic
// replay reconstructs, which is how resumed runs prove they continue the
// exact random sequences of the killed run.
//
// The generator is SplitMix64 (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014): a 64-bit counter passed
// through a fixed avalanche permutation. It passes BigCrush, every seed
// yields a full 2^64 period, and one output costs a handful of arithmetic
// ops — more than adequate for arrival sampling and jitter draws, and
// trivially checkpointable.
package rng

import "math"

// Stream is one deterministic random stream. The zero value is a valid
// stream seeded with 0; use New to mix a caller seed first. A Stream is not
// safe for concurrent use.
type Stream struct {
	state uint64
}

// New returns a stream whose sequence is fixed by seed. Seeds that differ
// in any bit yield unrelated sequences (the first output already passes
// through the avalanche permutation).
func New(seed int64) *Stream {
	return &Stream{state: uint64(seed)}
}

// State returns the complete generator state. Persisting this one word and
// restoring it with SetState resumes the sequence exactly.
func (s *Stream) State() uint64 { return s.state }

// SetState overwrites the generator state, e.g. from a checkpoint.
func (s *Stream) SetState(v uint64) { s.state = v }

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponential draw with mean 1, by inversion.
// 1-Float64() lies in (0, 1], so the logarithm is always finite.
func (s *Stream) ExpFloat64() float64 {
	return -math.Log(1 - s.Float64())
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// The modulo bias over a 64-bit draw is < n/2^64 — unobservable for
	// the simulation-sized n used here.
	return int(s.Uint64() % uint64(n))
}

// Fork derives an independent child stream from the parent's sequence: the
// child is seeded with one draw, so siblings forked in order are unrelated
// and the parent advances deterministically.
func (s *Stream) Fork() *Stream {
	return &Stream{state: s.Uint64()}
}
