package vnet

import (
	"errors"
	"testing"
	"time"

	"celestial/internal/netem"
)

func rpcPair(t *testing.T, latencyS float64) (*Sim, *RPC, *RPC) {
	t.Helper()
	s := NewSim(simStart)
	n := NewNetwork(s, twoNodeTopo(latencyS, 0), 1)
	return s, NewRPC(n, s, 0), NewRPC(n, s, 1)
}

func TestRPCRoundTrip(t *testing.T) {
	s, client, server := rpcPair(t, 0.005)
	server.HandleRequests(func(req Request) (any, int) {
		if req.Payload != "ping" || req.From != 0 {
			t.Errorf("request = %+v", req)
		}
		return "pong", 100
	})
	var got Response
	called := 0
	err := client.Call(1, 100, "ping", time.Second, func(r Response) {
		got = r
		called++
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart.Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Fatalf("callback invoked %d times", called)
	}
	if got.Err != nil || got.Payload != "pong" || got.From != 1 {
		t.Errorf("response = %+v", got)
	}
	// RTT is two 5 ms legs.
	if got.RTT != 10*time.Millisecond {
		t.Errorf("rtt = %v", got.RTT)
	}
	if client.Pending() != 0 {
		t.Errorf("pending = %d", client.Pending())
	}
}

func TestRPCTimeout(t *testing.T) {
	s, client, server := rpcPair(t, 0.005)
	// Server installed but the response is lost: make the network fully
	// lossy after the request is delivered by never installing a
	// handler at all.
	_ = server // no HandleRequests: requests are dropped
	var got Response
	err := client.Call(1, 100, "ping", 100*time.Millisecond, func(r Response) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, ErrTimeout) {
		t.Errorf("err = %v", got.Err)
	}
	if client.Pending() != 0 {
		t.Errorf("pending = %d", client.Pending())
	}
}

func TestRPCLateResponseIgnored(t *testing.T) {
	// Latency 80 ms per leg, timeout 100 ms: the response arrives at
	// 160 ms, after the timeout fired. The callback must run exactly
	// once (with the timeout).
	s, client, server := rpcPair(t, 0.080)
	server.HandleRequests(func(Request) (any, int) { return "late", 10 })
	calls := 0
	var last Response
	err := client.Call(1, 10, "ping", 100*time.Millisecond, func(r Response) {
		calls++
		last = r
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times", calls)
	}
	if !errors.Is(last.Err, ErrTimeout) {
		t.Errorf("err = %v", last.Err)
	}
}

func TestRPCConcurrentRequestsCorrelate(t *testing.T) {
	s, client, server := rpcPair(t, 0.010)
	server.HandleRequests(func(req Request) (any, int) {
		return req.Payload.(int) * 2, 50
	})
	results := map[int]int{}
	for i := 1; i <= 5; i++ {
		i := i
		if err := client.Call(1, 50, i, time.Second, func(r Response) {
			if r.Err != nil {
				t.Errorf("request %d: %v", i, r.Err)
				return
			}
			results[i] = r.Payload.(int)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if results[i] != 2*i {
			t.Errorf("results[%d] = %d", i, results[i])
		}
	}
}

func TestRPCSendErrorSurfacesImmediately(t *testing.T) {
	s := NewSim(simStart)
	n := NewNetwork(s, StaticTopology{Latency: map[int]map[int]float64{}}, 1)
	client := NewRPC(n, s, 0)
	NewRPC(n, s, 1)
	if err := client.Call(1, 10, "x", time.Second, func(Response) {}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
	if err := client.Call(1, 10, "x", 0, func(Response) {}); err == nil {
		t.Error("accepted zero timeout")
	}
}

func TestRPCRequestLostInNetwork(t *testing.T) {
	s := NewSim(simStart)
	n := NewNetwork(s, twoNodeTopo(0.001, 0), 1)
	if err := n.SetImpairments(netem.Params{LossProb: 1}); err != nil {
		t.Fatal(err)
	}
	client := NewRPC(n, s, 0)
	srv := NewRPC(n, s, 1)
	srv.HandleRequests(func(Request) (any, int) { return "ok", 10 })
	var got Response
	if err := client.Call(1, 10, "x", 50*time.Millisecond, func(r Response) { got = r }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, ErrTimeout) {
		t.Errorf("err = %v", got.Err)
	}
}

func TestRPCIgnoresForeignTraffic(t *testing.T) {
	s := NewSim(simStart)
	n := NewNetwork(s, twoNodeTopo(0.001, 0), 1)
	server := NewRPC(n, s, 1)
	server.HandleRequests(func(Request) (any, int) {
		t.Error("handler ran for non-RPC message")
		return nil, 0
	})
	n.Handle(0, func(Message) {})
	if err := n.Send(0, 1, 10, "plain datagram"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
}
