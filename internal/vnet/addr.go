package vnet

import (
	"fmt"
	"net"
	"strconv"
	"strings"
)

// Addressing scheme. Celestial computes virtual interface addresses from
// the satellite identity so that applications never need to manage an IP
// plan; this package uses the analogous scheme:
//
//	satellites:      10.(shell+1).(sat / 256).(sat % 256)
//	ground stations: 10.0.(gst / 256).(gst % 256)
//
// and DNS names (resolved by the dns package):
//
//	satellites:      <sat>.<shell>.celestial        e.g. 878.0.celestial
//	ground stations: <name>.gst.celestial           e.g. accra.gst.celestial
//
// The paper's example — "applications can simply query the A records for,
// e.g., 878.0.celestial to get the network addresses of satellite 878 in
// the first shell" — works verbatim against this scheme.

// DNSZone is the pseudo-TLD of the testbed.
const DNSZone = "celestial"

// maxPerShell is the largest satellite index the scheme can encode.
const maxPerShell = 65536

// SatIP returns the virtual IP of a satellite.
func SatIP(shell, sat int) (net.IP, error) {
	if shell < 0 || shell > 254 {
		return nil, fmt.Errorf("vnet: shell %d outside [0, 254]", shell)
	}
	if sat < 0 || sat >= maxPerShell {
		return nil, fmt.Errorf("vnet: satellite %d outside [0, %d)", sat, maxPerShell)
	}
	return net.IPv4(10, byte(shell+1), byte(sat/256), byte(sat%256)), nil
}

// GSTIP returns the virtual IP of a ground station by index.
func GSTIP(gst int) (net.IP, error) {
	if gst < 0 || gst >= maxPerShell {
		return nil, fmt.Errorf("vnet: ground station %d outside [0, %d)", gst, maxPerShell)
	}
	return net.IPv4(10, 0, byte(gst/256), byte(gst%256)), nil
}

// ParseIP inverts SatIP/GSTIP: it returns (shell, sat) for satellite IPs,
// with shell == -1 and sat == ground-station index for ground stations.
func ParseIP(ip net.IP) (shell, sat int, err error) {
	v4 := ip.To4()
	if v4 == nil || v4[0] != 10 {
		return 0, 0, fmt.Errorf("vnet: %v is not a testbed address", ip)
	}
	idx := int(v4[2])*256 + int(v4[3])
	if v4[1] == 0 {
		return -1, idx, nil
	}
	return int(v4[1]) - 1, idx, nil
}

// SatName returns the DNS name of a satellite, e.g. "878.0.celestial".
func SatName(shell, sat int) string {
	return fmt.Sprintf("%d.%d.%s", sat, shell, DNSZone)
}

// GSTName returns the DNS name of a ground station, e.g.
// "accra.gst.celestial".
func GSTName(name string) string {
	return fmt.Sprintf("%s.gst.%s", strings.ToLower(name), DNSZone)
}

// ParseSatRef parses the short "<sat>.<shell>" satellite reference (e.g.
// "878.0") used by scenario files, the HTTP information service and
// Testbed.NodeByName. Both fields must be bare non-negative decimal
// integers: no sign, no whitespace, no trailing junk — "3.2junk" or
// "-1.0" do not parse. Every consumer of the reference syntax shares this
// parser so they accept exactly the same spellings.
func ParseSatRef(ref string) (sat, shell int, ok bool) {
	satStr, shellStr, found := strings.Cut(ref, ".")
	if !found {
		return 0, 0, false
	}
	if sat, ok = ParseIndex(satStr); !ok {
		return 0, 0, false
	}
	shell, ok = ParseIndex(shellStr)
	return sat, shell, ok
}

// ParseIndex parses a bare non-negative decimal integer — the strict form
// of a lone shell or satellite index in node references and API paths (no
// sign, no whitespace; strconv.Atoi would accept "+5" and "-5"). Leading
// zeros are rejected too ("007" is not "7"): every index has exactly one
// valid spelling, so response caches keyed on reference strings cannot be
// flooded with alias spellings of the same node.
func ParseIndex(s string) (int, bool) {
	if s == "" || (len(s) > 1 && s[0] == '0') {
		return 0, false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, false // overflow
	}
	return n, true
}

// ParseName decodes a testbed DNS name. It returns (shell, sat, "") for
// satellite names and (-1, 0, gstName) for ground-station names. Trailing
// dots are accepted.
func ParseName(name string) (shell, sat int, gst string, err error) {
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	parts := strings.Split(name, ".")
	if len(parts) != 3 || parts[2] != DNSZone {
		return 0, 0, "", fmt.Errorf("vnet: %q is not a <x>.<y>.%s name", name, DNSZone)
	}
	if parts[1] == "gst" {
		if parts[0] == "" {
			return 0, 0, "", fmt.Errorf("vnet: empty ground station name in %q", name)
		}
		return -1, 0, parts[0], nil
	}
	sat, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, "", fmt.Errorf("vnet: bad satellite index in %q: %w", name, err)
	}
	shell, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, "", fmt.Errorf("vnet: bad shell index in %q: %w", name, err)
	}
	if shell < 0 || sat < 0 {
		return 0, 0, "", fmt.Errorf("vnet: negative indices in %q", name)
	}
	return shell, sat, "", nil
}
