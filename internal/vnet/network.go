package vnet

import (
	"errors"
	"fmt"
	"math"
	"time"

	"celestial/internal/netem"
	"celestial/internal/retry"
	"celestial/internal/rng"
)

// PathInfo describes the current network path between two nodes as the
// Constellation Calculation computed it.
type PathInfo struct {
	// LatencyS is the one-way end-to-end propagation latency in seconds.
	LatencyS float64
	// BandwidthKbps is the bottleneck bandwidth along the path.
	BandwidthKbps float64
	// OK is false when the nodes are currently not connected.
	OK bool
}

// Topology supplies per-pair path information and per-node activity. The
// coordinator swaps implementations on every update interval.
type Topology interface {
	// PathInfo returns the current path characteristics between two
	// nodes in the constellation-wide numbering.
	PathInfo(a, b int) PathInfo
	// NodeActive reports whether a node's machine is active (suspended
	// machines can neither send nor receive).
	NodeActive(id int) bool
}

// Message is one datagram delivered through the virtual network.
type Message struct {
	From, To  int
	SizeBytes int
	Payload   any
	SentAt    time.Time
	// DeliveredAt is filled in on delivery.
	DeliveredAt time.Time
	// Corrupted marks netem payload corruption.
	Corrupted bool
}

// Latency returns the end-to-end delay this message experienced.
func (m Message) Latency() time.Duration { return m.DeliveredAt.Sub(m.SentAt) }

// Handler consumes messages delivered to a node.
type Handler func(Message)

// Send errors.
var (
	// ErrUnreachable is returned when no path exists between the nodes.
	ErrUnreachable = errors.New("vnet: destination unreachable")
	// ErrSuspended is returned when either endpoint's machine is
	// suspended or otherwise inactive.
	ErrSuspended = errors.New("vnet: machine suspended")
	// ErrNoHandler is returned when the destination has no registered
	// handler.
	ErrNoHandler = errors.New("vnet: destination has no handler")
)

// pairState is the cached per-directed-pair link state: the shaper (nil
// while the pair has never been reachable) and the topology version its
// parameters were refreshed at. ok caches reachability for that version.
type pairState struct {
	shaper  *netem.Shaper
	version uint64
	ok      bool
}

// Network delivers messages between emulated machines with the delays and
// bandwidth constraints of the current topology. It must be driven from
// the simulation goroutine.
//
// Per-pair shaper parameters are refreshed lazily and version-gated: a
// Send only consults the topology (a shortest-path lookup) and calls
// Shaper.Update when the topology version changed since the pair's last
// refresh. The coordinator bumps the version exactly when a constellation
// diff is non-empty, so during sub-quantum ticks — where the emulated
// network is provably unchanged — messages flow without recomputing or
// revalidating any link parameters, the vnet half of the paper's
// "distribute only the difference between consecutive states" design.
type Network struct {
	sim  *Sim
	topo Topology
	// handlers by node ID.
	handlers map[int]Handler
	// pairs holds per directed node pair link state, created lazily.
	pairs map[[2]int]*pairState
	// impair is added on top of topology delay/bandwidth (loss etc.).
	impair netem.Params
	// bwCapKbps, when positive, clamps every path's bandwidth below the
	// topology's value (scripted capacity degradation).
	bwCapKbps float64
	seed      int64
	// version is the topology epoch; pairs refresh when behind it.
	version uint64

	// delivered counts messages handed to handlers; dropped counts
	// loss-model drops.
	delivered uint64
	dropped   uint64

	// retryPolicy, retryRnd, faultRate and faultRnd configure the retry
	// middleware around shaper programming (see SetRetryPolicy and
	// SetShaperFaults); retryStats accumulates its outcomes. All are
	// driven from the simulation goroutine, like the rest of the network.
	retryPolicy retry.Policy
	retryRnd    *rng.Stream
	faultRate   float64
	faultRnd    *rng.Stream
	retryStats  retry.Stats
}

// NewNetwork creates a network driven by sim. The seed makes the loss and
// jitter models reproducible.
func NewNetwork(sim *Sim, topo Topology, seed int64) *Network {
	return &Network{
		sim:      sim,
		topo:     topo,
		handlers: map[int]Handler{},
		pairs:    map[[2]int]*pairState{},
		seed:     seed,
		version:  1,
	}
}

// SetTopology swaps the topology, e.g. on a coordinator update. Existing
// queue state in the per-pair shapers is preserved, mirroring how tc qdisc
// updates do not drop queued packets.
func (n *Network) SetTopology(t Topology) {
	n.topo = t
	n.InvalidatePaths()
}

// InvalidatePaths marks every cached per-pair path stale: the next Send on
// each pair re-reads the topology and updates its shaper. Call it when the
// current Topology's answers changed behind the network's back — the
// coordinator does so once per update tick whose constellation diff is
// non-empty, and skips it otherwise.
func (n *Network) InvalidatePaths() { n.version++ }

// InvalidatePairsIf marks only the cached pairs matching pred stale, by
// resetting their pair version (the epoch counter starts at 1, so 0 is
// never current). Unlike InvalidatePaths it does not start a new topology
// epoch: pairs outside pred keep their state, including any staleness
// from earlier scoped invalidations. The fan-out tier uses it to refresh
// one host shard's shapers without forcing every other shard's pairs to
// re-read the topology.
func (n *Network) InvalidatePairsIf(pred func(from, to int) bool) {
	for key, ps := range n.pairs {
		if pred(key[0], key[1]) {
			ps.version = 0
		}
	}
}

// SetImpairments configures additional netem impairments (loss,
// duplication, corruption, reordering, jitter) applied to every message on
// top of the topology's delay and bandwidth.
func (n *Network) SetImpairments(p netem.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n.impair = p
	// Invalidate so existing shapers pick the new impairments up on
	// their next Send.
	n.InvalidatePaths()
	return nil
}

// SetSeed rebases the deterministic per-directed-pair seeds of the loss,
// jitter and reordering models (e.g. to a scenario's run seed). It must be
// called before any traffic flows: shapers already created keep the seed
// they were built with.
func (n *Network) SetSeed(seed int64) { n.seed = seed }

// SetBandwidthCap clamps the bandwidth of every path to at most kbps on
// top of the topology's bottleneck value; zero removes the cap. Scenario
// timelines use this to script capacity degradation (e.g. weather fade on
// radio links) without touching the constellation.
func (n *Network) SetBandwidthCap(kbps float64) error {
	if kbps < 0 {
		return fmt.Errorf("vnet: negative bandwidth cap %v", kbps)
	}
	n.bwCapKbps = kbps
	n.InvalidatePaths()
	return nil
}

// SetRetryPolicy configures the retry middleware around per-pair shaper
// programming (creation and parameter updates in pair): transient failures
// are retried under the policy, with jitter drawn from a stream seeded with
// seed. The zero policy adopts retry.Default.
func (n *Network) SetRetryPolicy(p retry.Policy, seed int64) {
	n.retryPolicy = p
	n.retryRnd = rng.New(seed)
}

// SetShaperFaults injects transient failures into shaper programming: each
// attempt independently fails with probability rate before reaching the
// shaper, drawn from a stream seeded with seed. The injected errors are
// marked retry.Transient so a configured retry policy recovers from them;
// rate 0 disables injection. Scenario engines use this to exercise the
// retry path deterministically.
func (n *Network) SetShaperFaults(rate float64, seed int64) {
	n.faultRate = rate
	n.faultRnd = rng.New(seed)
}

// RetryStats returns the accumulated shaper-programming retry counters.
func (n *Network) RetryStats() retry.Stats { return n.retryStats }

// shaperOp runs one shaper-programming operation through the retry
// middleware, injecting configured faults ahead of the real operation.
func (n *Network) shaperOp(op func() error) error {
	attempt := op
	if n.faultRate > 0 && n.faultRnd != nil {
		attempt = func() error {
			if n.faultRnd.Float64() < n.faultRate {
				return retry.Transient(fmt.Errorf("injected shaper fault"))
			}
			return op()
		}
	}
	var rnd func() float64
	if n.retryRnd != nil {
		rnd = n.retryRnd.Float64
	}
	res := retry.Do(n.retryPolicy, rnd, attempt)
	n.retryStats.Record(res)
	return res.Err
}

// Handle registers the message handler of a node, replacing any previous
// one.
func (n *Network) Handle(node int, h Handler) { n.handlers[node] = h }

// Stats returns how many messages were delivered and dropped so far.
func (n *Network) Stats() (delivered, dropped uint64) { return n.delivered, n.dropped }

// Send transmits a message from one node to another. The message
// experiences the path's propagation delay plus serialization at the
// bottleneck bandwidth; the registered handler of the destination runs at
// the delivery time. Send must be called from the simulation goroutine.
func (n *Network) Send(from, to int, sizeBytes int, payload any) error {
	if from == to {
		return fmt.Errorf("vnet: cannot send from node %d to itself", from)
	}
	if sizeBytes < 0 {
		return fmt.Errorf("vnet: negative message size %d", sizeBytes)
	}
	if !n.topo.NodeActive(from) || !n.topo.NodeActive(to) {
		return fmt.Errorf("%w: %d -> %d", ErrSuspended, from, to)
	}
	handler, ok := n.handlers[to]
	if !ok {
		return fmt.Errorf("%w: node %d", ErrNoHandler, to)
	}
	ps, err := n.pair(from, to)
	if err != nil {
		return err
	}
	if !ps.ok {
		return fmt.Errorf("%w: %d -> %d", ErrUnreachable, from, to)
	}
	now := n.sim.Now()
	delivery := ps.shaper.Transmit(now, sizeBytes)
	if delivery.Lost() {
		n.dropped++
		return nil // loss is silent, like the real network
	}
	for _, at := range delivery.Arrivals {
		msg := Message{
			From: from, To: to, SizeBytes: sizeBytes, Payload: payload,
			SentAt: now, DeliveredAt: at, Corrupted: delivery.Corrupted,
		}
		if err := n.sim.At(at, func() {
			n.delivered++
			handler(msg)
		}); err != nil {
			return fmt.Errorf("vnet: scheduling delivery: %w", err)
		}
	}
	return nil
}

// pair returns the pair's link state, refreshed from the topology when the
// pair is behind the current version: reachability is re-read, and the
// shaper parameters updated only when they actually changed. Pairs at the
// current version return without touching the topology at all.
func (n *Network) pair(from, to int) (*pairState, error) {
	key := [2]int{from, to}
	ps, ok := n.pairs[key]
	if !ok {
		ps = &pairState{}
		n.pairs[key] = ps
	} else if ps.version == n.version {
		return ps, nil
	}

	pi := n.topo.PathInfo(from, to)
	if !pi.OK || math.IsInf(pi.LatencyS, 1) {
		ps.ok = false
		ps.version = n.version
		return ps, nil
	}
	params := n.impair
	params.Delay = netem.QuantizeDelay(time.Duration(pi.LatencyS * float64(time.Second)))
	params.BandwidthKbps = pi.BandwidthKbps
	if n.bwCapKbps > 0 && (params.BandwidthKbps == 0 || params.BandwidthKbps > n.bwCapKbps) {
		params.BandwidthKbps = n.bwCapKbps
	}
	if ps.shaper == nil {
		// Distinct deterministic seed per directed pair, stable across
		// reachability changes so runs stay reproducible.
		seed := n.seed ^ int64(from)<<32 ^ int64(to)
		if err := n.shaperOp(func() error {
			s, err := netem.NewShaper(params, seed)
			if err != nil {
				return err
			}
			ps.shaper = s
			return nil
		}); err != nil {
			return nil, err
		}
	} else if params != ps.shaper.Params() {
		if err := n.shaperOp(func() error { return ps.shaper.Update(params) }); err != nil {
			return nil, err
		}
	}
	ps.ok = true
	ps.version = n.version
	return ps, nil
}

// StaticTopology is a fixed Topology, useful for tests and for modeling
// plain host networks.
type StaticTopology struct {
	// Latency[a][b] in seconds; missing pairs are unreachable.
	Latency map[int]map[int]float64
	// BandwidthKbps applies to all pairs; zero means unlimited.
	BandwidthKbps float64
	// Inactive marks suspended nodes.
	Inactive map[int]bool
}

// PathInfo implements Topology.
func (s StaticTopology) PathInfo(a, b int) PathInfo {
	row, ok := s.Latency[a]
	if !ok {
		return PathInfo{}
	}
	l, ok := row[b]
	if !ok {
		return PathInfo{}
	}
	return PathInfo{LatencyS: l, BandwidthKbps: s.BandwidthKbps, OK: true}
}

// NodeActive implements Topology.
func (s StaticTopology) NodeActive(id int) bool { return !s.Inactive[id] }
