package vnet

import (
	"errors"
	"fmt"
	"math"
	"time"

	"celestial/internal/netem"
)

// PathInfo describes the current network path between two nodes as the
// Constellation Calculation computed it.
type PathInfo struct {
	// LatencyS is the one-way end-to-end propagation latency in seconds.
	LatencyS float64
	// BandwidthKbps is the bottleneck bandwidth along the path.
	BandwidthKbps float64
	// OK is false when the nodes are currently not connected.
	OK bool
}

// Topology supplies per-pair path information and per-node activity. The
// coordinator swaps implementations on every update interval.
type Topology interface {
	// PathInfo returns the current path characteristics between two
	// nodes in the constellation-wide numbering.
	PathInfo(a, b int) PathInfo
	// NodeActive reports whether a node's machine is active (suspended
	// machines can neither send nor receive).
	NodeActive(id int) bool
}

// Message is one datagram delivered through the virtual network.
type Message struct {
	From, To  int
	SizeBytes int
	Payload   any
	SentAt    time.Time
	// DeliveredAt is filled in on delivery.
	DeliveredAt time.Time
	// Corrupted marks netem payload corruption.
	Corrupted bool
}

// Latency returns the end-to-end delay this message experienced.
func (m Message) Latency() time.Duration { return m.DeliveredAt.Sub(m.SentAt) }

// Handler consumes messages delivered to a node.
type Handler func(Message)

// Send errors.
var (
	// ErrUnreachable is returned when no path exists between the nodes.
	ErrUnreachable = errors.New("vnet: destination unreachable")
	// ErrSuspended is returned when either endpoint's machine is
	// suspended or otherwise inactive.
	ErrSuspended = errors.New("vnet: machine suspended")
	// ErrNoHandler is returned when the destination has no registered
	// handler.
	ErrNoHandler = errors.New("vnet: destination has no handler")
)

// Network delivers messages between emulated machines with the delays and
// bandwidth constraints of the current topology. It must be driven from
// the simulation goroutine.
type Network struct {
	sim  *Sim
	topo Topology
	// handlers by node ID.
	handlers map[int]Handler
	// shapers per directed node pair, created lazily.
	shapers map[[2]int]*netem.Shaper
	// impair is added on top of topology delay/bandwidth (loss etc.).
	impair netem.Params
	seed   int64

	// delivered counts messages handed to handlers; dropped counts
	// loss-model drops.
	delivered uint64
	dropped   uint64
}

// NewNetwork creates a network driven by sim. The seed makes the loss and
// jitter models reproducible.
func NewNetwork(sim *Sim, topo Topology, seed int64) *Network {
	return &Network{
		sim:      sim,
		topo:     topo,
		handlers: map[int]Handler{},
		shapers:  map[[2]int]*netem.Shaper{},
		seed:     seed,
	}
}

// SetTopology swaps the topology, e.g. on a coordinator update. Existing
// queue state in the per-pair shapers is preserved, mirroring how tc qdisc
// updates do not drop queued packets.
func (n *Network) SetTopology(t Topology) { n.topo = t }

// SetImpairments configures additional netem impairments (loss,
// duplication, corruption, reordering, jitter) applied to every message on
// top of the topology's delay and bandwidth.
func (n *Network) SetImpairments(p netem.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n.impair = p
	// Existing shapers pick the new impairments up on their next
	// parameter refresh in Send.
	return nil
}

// Handle registers the message handler of a node, replacing any previous
// one.
func (n *Network) Handle(node int, h Handler) { n.handlers[node] = h }

// Stats returns how many messages were delivered and dropped so far.
func (n *Network) Stats() (delivered, dropped uint64) { return n.delivered, n.dropped }

// Send transmits a message from one node to another. The message
// experiences the path's propagation delay plus serialization at the
// bottleneck bandwidth; the registered handler of the destination runs at
// the delivery time. Send must be called from the simulation goroutine.
func (n *Network) Send(from, to int, sizeBytes int, payload any) error {
	if from == to {
		return fmt.Errorf("vnet: cannot send from node %d to itself", from)
	}
	if sizeBytes < 0 {
		return fmt.Errorf("vnet: negative message size %d", sizeBytes)
	}
	if !n.topo.NodeActive(from) || !n.topo.NodeActive(to) {
		return fmt.Errorf("%w: %d -> %d", ErrSuspended, from, to)
	}
	handler, ok := n.handlers[to]
	if !ok {
		return fmt.Errorf("%w: node %d", ErrNoHandler, to)
	}
	pi := n.topo.PathInfo(from, to)
	if !pi.OK || math.IsInf(pi.LatencyS, 1) {
		return fmt.Errorf("%w: %d -> %d", ErrUnreachable, from, to)
	}

	shaper, err := n.shaper(from, to, pi)
	if err != nil {
		return err
	}
	now := n.sim.Now()
	delivery := shaper.Transmit(now, sizeBytes)
	if delivery.Lost() {
		n.dropped++
		return nil // loss is silent, like the real network
	}
	for _, at := range delivery.Arrivals {
		msg := Message{
			From: from, To: to, SizeBytes: sizeBytes, Payload: payload,
			SentAt: now, DeliveredAt: at, Corrupted: delivery.Corrupted,
		}
		if err := n.sim.At(at, func() {
			n.delivered++
			handler(msg)
		}); err != nil {
			return fmt.Errorf("vnet: scheduling delivery: %w", err)
		}
	}
	return nil
}

// shaper returns the per-pair shaper with parameters refreshed from the
// current path info.
func (n *Network) shaper(from, to int, pi PathInfo) (*netem.Shaper, error) {
	params := n.impair
	params.Delay = time.Duration(pi.LatencyS * float64(time.Second))
	params.BandwidthKbps = pi.BandwidthKbps

	key := [2]int{from, to}
	s, ok := n.shapers[key]
	if !ok {
		// Distinct deterministic seed per directed pair.
		seed := n.seed ^ int64(from)<<32 ^ int64(to)
		var err error
		s, err = netem.NewShaper(params, seed)
		if err != nil {
			return nil, err
		}
		n.shapers[key] = s
		return s, nil
	}
	if err := s.Update(params); err != nil {
		return nil, err
	}
	return s, nil
}

// StaticTopology is a fixed Topology, useful for tests and for modeling
// plain host networks.
type StaticTopology struct {
	// Latency[a][b] in seconds; missing pairs are unreachable.
	Latency map[int]map[int]float64
	// BandwidthKbps applies to all pairs; zero means unlimited.
	BandwidthKbps float64
	// Inactive marks suspended nodes.
	Inactive map[int]bool
}

// PathInfo implements Topology.
func (s StaticTopology) PathInfo(a, b int) PathInfo {
	row, ok := s.Latency[a]
	if !ok {
		return PathInfo{}
	}
	l, ok := row[b]
	if !ok {
		return PathInfo{}
	}
	return PathInfo{LatencyS: l, BandwidthKbps: s.BandwidthKbps, OK: true}
}

// NodeActive implements Topology.
func (s StaticTopology) NodeActive(id int) bool { return !s.Inactive[id] }
