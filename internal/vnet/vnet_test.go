package vnet

import (
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"

	"celestial/internal/netem"
	"celestial/internal/retry"
)

var simStart = time.Date(2022, 4, 14, 12, 0, 0, 0, time.UTC)

func TestSimOrdering(t *testing.T) {
	s := NewSim(simStart)
	var order []int
	add := func(d time.Duration, id int) {
		if err := s.After(d, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	add(3*time.Second, 3)
	add(1*time.Second, 1)
	add(2*time.Second, 2)
	add(1*time.Second, 11) // same time as 1: FIFO order
	if err := s.RunUntil(simStart.Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if !s.Now().Equal(simStart.Add(10 * time.Second)) {
		t.Errorf("now = %v", s.Now())
	}
}

func TestSimRejectsPast(t *testing.T) {
	s := NewSim(simStart)
	if err := s.At(simStart.Add(-time.Second), func() {}); err == nil {
		t.Error("accepted past event")
	}
	if err := s.After(-time.Second, func() {}); err == nil {
		t.Error("accepted negative delay")
	}
	if err := s.RunUntil(simStart.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart); err == nil {
		t.Error("RunUntil accepted past target")
	}
}

func TestSimEventsScheduleEvents(t *testing.T) {
	s := NewSim(simStart)
	hits := 0
	if err := s.After(time.Second, func() {
		hits++
		if err := s.After(time.Second, func() { hits++ }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart.Add(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Errorf("hits = %d", hits)
	}
}

func TestSimRunUntilBoundary(t *testing.T) {
	s := NewSim(simStart)
	ran := false
	if err := s.At(simStart.Add(5*time.Second), func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	// Events exactly at the boundary run.
	if err := s.RunUntil(simStart.Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("boundary event did not run")
	}
}

func TestSimEvery(t *testing.T) {
	s := NewSim(simStart)
	count := 0
	err := s.Every(simStart.Add(time.Second), 2*time.Second, func() bool {
		count++
		return count < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
	if err := s.Every(simStart.Add(2*time.Minute), 0, func() bool { return false }); err == nil {
		t.Error("accepted zero interval")
	}
}

func TestSimDrainLimit(t *testing.T) {
	s := NewSim(simStart)
	if err := s.Every(simStart, time.Second, func() bool { return true }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drain(10); err == nil {
		t.Error("drain of unbounded recurrence did not hit limit")
	}
}

func TestAddressing(t *testing.T) {
	ip, err := SatIP(0, 878)
	if err != nil {
		t.Fatal(err)
	}
	if !ip.Equal(net.IPv4(10, 1, 3, 110)) {
		t.Errorf("sat ip = %v", ip)
	}
	gip, err := GSTIP(2)
	if err != nil {
		t.Fatal(err)
	}
	if !gip.Equal(net.IPv4(10, 0, 0, 2)) {
		t.Errorf("gst ip = %v", gip)
	}
	if _, err := SatIP(-1, 0); err == nil {
		t.Error("accepted negative shell")
	}
	if _, err := SatIP(0, 70000); err == nil {
		t.Error("accepted oversized sat index")
	}
	if _, err := GSTIP(-1); err == nil {
		t.Error("accepted negative gst")
	}
}

func TestParseIPRoundTrip(t *testing.T) {
	err := quick.Check(func(shellRaw, satRaw uint16) bool {
		shell := int(shellRaw % 254)
		sat := int(satRaw)
		ip, err := SatIP(shell, sat)
		if err != nil {
			return false
		}
		s2, i2, err := ParseIP(ip)
		return err == nil && s2 == shell && i2 == sat
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
	gip, _ := GSTIP(300)
	shell, idx, err := ParseIP(gip)
	if err != nil || shell != -1 || idx != 300 {
		t.Errorf("ParseIP(gst) = %d, %d, %v", shell, idx, err)
	}
	if _, _, err := ParseIP(net.IPv4(192, 168, 0, 1)); err == nil {
		t.Error("accepted non-testbed IP")
	}
}

func TestNames(t *testing.T) {
	if n := SatName(0, 878); n != "878.0.celestial" {
		t.Errorf("sat name = %q", n)
	}
	if n := GSTName("Accra"); n != "accra.gst.celestial" {
		t.Errorf("gst name = %q", n)
	}
	shell, sat, gst, err := ParseName("878.0.celestial")
	if err != nil || shell != 0 || sat != 878 || gst != "" {
		t.Errorf("ParseName = %d %d %q %v", shell, sat, gst, err)
	}
	shell, _, gst, err = ParseName("accra.gst.celestial.")
	if err != nil || shell != -1 || gst != "accra" {
		t.Errorf("ParseName gst = %d %q %v", shell, gst, err)
	}
	for _, bad := range []string{"celestial", "a.b.c.d", "878.0.example", "x.0.celestial", "878.y.celestial", ".gst.celestial"} {
		if _, _, _, err := ParseName(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// twoNodeTopo wires nodes 0 and 1 with a fixed latency.
func twoNodeTopo(latencyS float64, bwKbps float64) StaticTopology {
	return StaticTopology{
		Latency: map[int]map[int]float64{
			0: {1: latencyS},
			1: {0: latencyS},
		},
		BandwidthKbps: bwKbps,
	}
}

func TestNetworkDelivery(t *testing.T) {
	s := NewSim(simStart)
	n := NewNetwork(s, twoNodeTopo(0.008, 0), 1)
	var got []Message
	n.Handle(1, func(m Message) { got = append(got, m) })

	if err := n.Send(0, 1, 1000, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered = %d", len(got))
	}
	m := got[0]
	if m.Payload != "hello" || m.From != 0 || m.To != 1 {
		t.Errorf("message = %+v", m)
	}
	if m.Latency() != 8*time.Millisecond {
		t.Errorf("latency = %v", m.Latency())
	}
	if d, dr := n.Stats(); d != 1 || dr != 0 {
		t.Errorf("stats = %d, %d", d, dr)
	}
}

func TestNetworkErrors(t *testing.T) {
	s := NewSim(simStart)
	topo := StaticTopology{
		Latency:  map[int]map[int]float64{0: {1: 0.001}},
		Inactive: map[int]bool{2: true},
	}
	n := NewNetwork(s, topo, 1)
	n.Handle(1, func(Message) {})
	n.Handle(3, func(Message) {})

	if err := n.Send(0, 0, 10, nil); err == nil {
		t.Error("accepted self-send")
	}
	if err := n.Send(0, 1, -1, nil); err == nil {
		t.Error("accepted negative size")
	}
	if err := n.Send(0, 3, 10, nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("unreachable error = %v", err)
	}
	if err := n.Send(0, 2, 10, nil); !errors.Is(err, ErrNoHandler) && !errors.Is(err, ErrSuspended) {
		t.Errorf("suspended error = %v", err)
	}
	topo.Inactive[2] = true
	n.Handle(2, func(Message) {})
	if err := n.Send(0, 2, 10, nil); !errors.Is(err, ErrSuspended) {
		t.Errorf("suspended error = %v", err)
	}
	// No handler registered for node 0.
	if err := n.Send(1, 0, 10, nil); !errors.Is(err, ErrNoHandler) {
		t.Errorf("no-handler error = %v", err)
	}
}

func TestNetworkBandwidthQueueing(t *testing.T) {
	s := NewSim(simStart)
	// 1000 kbps: a 1000-byte message serializes in 8 ms.
	n := NewNetwork(s, twoNodeTopo(0.001, 1000), 1)
	var arrivals []time.Duration
	n.Handle(1, func(m Message) { arrivals = append(arrivals, m.Latency()) })

	for i := 0; i < 3; i++ {
		if err := n.Send(0, 1, 1000, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	want := []time.Duration{9 * time.Millisecond, 17 * time.Millisecond, 25 * time.Millisecond}
	for i, w := range want {
		if arrivals[i] != w {
			t.Errorf("arrival %d = %v, want %v", i, arrivals[i], w)
		}
	}
}

func TestNetworkTopologyUpdate(t *testing.T) {
	s := NewSim(simStart)
	n := NewNetwork(s, twoNodeTopo(0.010, 0), 1)
	latencies := map[string]time.Duration{}
	n.Handle(1, func(m Message) { latencies[m.Payload.(string)] = m.Latency() })

	if err := n.Send(0, 1, 10, "before"); err != nil {
		t.Fatal(err)
	}
	// The coordinator pushes a new topology with a shorter path. The
	// second message overtakes the first — expected packet reordering
	// when the constellation path shortens.
	n.SetTopology(twoNodeTopo(0.002, 0))
	if err := n.Send(0, 1, 10, "after"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if latencies["before"] != 10*time.Millisecond || latencies["after"] != 2*time.Millisecond {
		t.Errorf("latencies = %v", latencies)
	}
}

func TestNetworkImpairments(t *testing.T) {
	s := NewSim(simStart)
	n := NewNetwork(s, twoNodeTopo(0.001, 0), 1)
	if err := n.SetImpairments(netem.Params{LossProb: 1}); err != nil {
		t.Fatal(err)
	}
	n.Handle(1, func(Message) { t.Error("lossy network delivered") })
	for i := 0; i < 10; i++ {
		if err := n.Send(0, 1, 10, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, dropped := n.Stats(); dropped != 10 {
		t.Errorf("dropped = %d", dropped)
	}
	if err := n.SetImpairments(netem.Params{LossProb: 2}); err == nil {
		t.Error("accepted invalid impairments")
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := NewSim(simStart)
		n := NewNetwork(s, twoNodeTopo(0.005, 0), 42)
		if err := n.SetImpairments(netem.Params{Jitter: time.Millisecond, LossProb: 0.2}); err != nil {
			t.Fatal(err)
		}
		var out []time.Duration
		n.Handle(1, func(m Message) { out = append(out, m.Latency()) })
		for i := 0; i < 50; i++ {
			if err := n.Send(0, 1, 100, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkNetworkSendDeliver(b *testing.B) {
	s := NewSim(simStart)
	n := NewNetwork(s, twoNodeTopo(0.001, 0), 1)
	n.Handle(1, func(Message) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Send(0, 1, 1000, nil); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			if err := s.RunUntil(s.Now().Add(time.Second)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestInvalidatePathsRefreshesCachedPairs pins the version-gated refresh
// contract: a pair's cached path survives in-place topology mutation until
// InvalidatePaths (or SetTopology) marks it stale.
func TestInvalidatePathsRefreshesCachedPairs(t *testing.T) {
	s := NewSim(simStart)
	topo := twoNodeTopo(0.010, 0)
	n := NewNetwork(s, topo, 1)
	latencies := map[string]time.Duration{}
	n.Handle(1, func(m Message) { latencies[m.Payload.(string)] = m.Latency() })

	if err := n.Send(0, 1, 10, "first"); err != nil {
		t.Fatal(err)
	}
	// Mutate the topology behind the network's back: the cached pair
	// keeps the old parameters...
	topo.Latency[0][1] = 0.002
	if err := n.Send(0, 1, 10, "stale"); err != nil {
		t.Fatal(err)
	}
	// ...until the paths are invalidated.
	n.InvalidatePaths()
	if err := n.Send(0, 1, 10, "fresh"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if latencies["first"] != 10*time.Millisecond || latencies["stale"] != 10*time.Millisecond {
		t.Errorf("cached sends = %v", latencies)
	}
	if latencies["fresh"] != 2*time.Millisecond {
		t.Errorf("refreshed send = %v", latencies)
	}
}

// TestUnreachabilityCachedPerVersion checks that reachability is cached
// alongside the shaper parameters and re-read on invalidation.
func TestUnreachabilityCachedPerVersion(t *testing.T) {
	s := NewSim(simStart)
	topo := StaticTopology{Latency: map[int]map[int]float64{0: {}}}
	n := NewNetwork(s, topo, 1)
	n.Handle(1, func(Message) {})
	if err := n.Send(0, 1, 10, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	// The pair becomes reachable mid-version: still cached as down.
	topo.Latency[0][1] = 0.001
	if err := n.Send(0, 1, 10, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cached err = %v", err)
	}
	n.InvalidatePaths()
	if err := n.Send(0, 1, 10, nil); err != nil {
		t.Fatalf("after invalidate: %v", err)
	}
}

func TestParseSatRef(t *testing.T) {
	good := map[string][2]int{ // ref -> {sat, shell}
		"878.0": {878, 0},
		"0.4":   {0, 4},
		"10.2":  {10, 2},
	}
	for ref, want := range good {
		sat, shell, ok := ParseSatRef(ref)
		if !ok || sat != want[0] || shell != want[1] {
			t.Errorf("ParseSatRef(%q) = (%d, %d, %v), want (%d, %d, true)",
				ref, sat, shell, ok, want[0], want[1])
		}
	}
	bad := []string{
		"", ".", "878", "878.", ".0", "878.0.5", "878.0x", "x878.0",
		"-1.0", "0.-1", "+1.0", "1.+0", " 1.0", "1. 0", "1,0",
		"007.2", "1.00", "00.0", // leading zeros: one spelling per index
		"99999999999999999999.0", // overflows int
		"0.99999999999999999999", // overflow on the shell side too
		"1.0 ", "\t1.0", "1.0\n", // surrounding whitespace in any position
		"1..0", "1.0.", ".1.0", // stray separators
		"0x10.0", "1.0x2", // hex spellings are not indices
		"１.0", "1.０", // full-width digits (non-ASCII)
		"1e2.0", "1.2e1", // scientific notation
		"\x001.0", "1.0\x00", // embedded NULs
	}
	for _, ref := range bad {
		if _, _, ok := ParseSatRef(ref); ok {
			t.Errorf("ParseSatRef(%q) parsed, want rejection", ref)
		}
	}
}

func TestShaperRetryRecoversInjectedFaults(t *testing.T) {
	s := NewSim(simStart)
	topo := StaticTopology{Latency: map[int]map[int]float64{
		0: {1: 0.01}, 1: {0: 0.01},
	}}
	n := NewNetwork(s, topo, 1)
	got := 0
	n.Handle(1, func(Message) { got++ })
	// Every programming attempt fails with p=0.6; 10 attempts make the
	// seeded outcome recover deterministically.
	n.SetShaperFaults(0.6, 5)
	n.SetRetryPolicy(retry.Policy{MaxAttempts: 10}, 5)
	if err := n.Send(0, 1, 100, "x"); err != nil {
		t.Fatalf("send with retried shaper faults: %v", err)
	}
	if err := s.RunUntil(simStart.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered %d messages", got)
	}
	st := n.RetryStats()
	if st.Ops != 1 || st.Retried != 1 || st.Recovered != 1 || st.GaveUp != 0 {
		t.Fatalf("retry stats = %+v", st)
	}
}

func TestShaperRetryGivesUpSurfacesError(t *testing.T) {
	s := NewSim(simStart)
	topo := StaticTopology{Latency: map[int]map[int]float64{0: {1: 0.01}}}
	n := NewNetwork(s, topo, 1)
	n.Handle(1, func(Message) {})
	n.SetShaperFaults(1.0, 5)
	n.SetRetryPolicy(retry.Policy{MaxAttempts: 3}, 5)
	err := n.Send(0, 1, 100, "x")
	if err == nil {
		t.Fatal("send with unrecoverable shaper faults returned nil")
	}
	if !retry.IsTransient(err) {
		t.Errorf("give-up error %v lost transient classification", err)
	}
	if st := n.RetryStats(); st.GaveUp != 1 || st.Attempts != 3 {
		t.Fatalf("retry stats = %+v", st)
	}
	// The pair was left unprogrammed: a later fault-free send must
	// program it and deliver.
	n.SetShaperFaults(0, 5)
	if err := n.Send(0, 1, 100, "x"); err != nil {
		t.Fatalf("send after faults cleared: %v", err)
	}
}
