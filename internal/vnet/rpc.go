package vnet

import (
	"errors"
	"fmt"
	"time"
)

// RPC layers request/response semantics over the datagram Network:
// requests carry correlation IDs, responses are routed back to per-request
// callbacks, and outstanding requests fail with ErrTimeout when no
// response arrives in time. Application services like the §4 tracking
// service ("periodically checks the satellites in reach of our clients and
// instructs them") are naturally request/response; this helper removes the
// correlation boilerplate from every application.
type RPC struct {
	net  *Network
	sim  *Sim
	node int

	nextID   uint64
	pending  map[uint64]func(Response)
	handler  func(Request) (any, int)
	respSize int
}

// Request is an incoming RPC request.
type Request struct {
	From    int
	Payload any
	// id correlates the response.
	id uint64
}

// Response is the outcome of an RPC.
type Response struct {
	// Err is non-nil on timeout or send failure.
	Err     error
	From    int
	Payload any
	// RTT is the request/response round-trip time.
	RTT time.Duration
}

// ErrTimeout is reported when no response arrives within the deadline.
var ErrTimeout = errors.New("vnet: rpc timeout")

// rpcEnvelope is the wire payload.
type rpcEnvelope struct {
	id         uint64
	isResponse bool
	payload    any
}

// NewRPC attaches RPC semantics to a node. It registers the node's message
// handler on the network; a node using RPC must not also call
// Network.Handle directly.
func NewRPC(network *Network, sim *Sim, node int) *RPC {
	r := &RPC{
		net: network, sim: sim, node: node,
		pending: map[uint64]func(Response){},
	}
	network.Handle(node, r.onMessage)
	return r
}

// HandleRequests installs the server-side handler: fn returns the response
// payload and its size in bytes.
func (r *RPC) HandleRequests(fn func(Request) (payload any, sizeBytes int)) {
	r.handler = fn
}

// Call sends a request of the given size and invokes done exactly once:
// with the response, or with ErrTimeout after the deadline, or immediately
// with a send error. Must be called from the simulation goroutine.
func (r *RPC) Call(to int, sizeBytes int, payload any, timeout time.Duration, done func(Response)) error {
	if timeout <= 0 {
		return fmt.Errorf("vnet: rpc timeout must be positive, have %v", timeout)
	}
	r.nextID++
	id := r.nextID
	sent := r.sim.Now()

	if err := r.net.Send(r.node, to, sizeBytes, rpcEnvelope{id: id, payload: payload}); err != nil {
		return err
	}
	r.pending[id] = func(resp Response) {
		resp.RTT = r.sim.Now().Sub(sent)
		done(resp)
	}
	return r.sim.After(timeout, func() {
		cb, ok := r.pending[id]
		if !ok {
			return // already answered
		}
		delete(r.pending, id)
		cb(Response{Err: fmt.Errorf("%w: request %d to node %d after %v", ErrTimeout, id, to, timeout)})
	})
}

// Pending returns the number of outstanding requests.
func (r *RPC) Pending() int { return len(r.pending) }

// onMessage dispatches incoming envelopes.
func (r *RPC) onMessage(m Message) {
	env, ok := m.Payload.(rpcEnvelope)
	if !ok {
		return // non-RPC traffic is ignored
	}
	if env.isResponse {
		cb, ok := r.pending[env.id]
		if !ok {
			return // response after timeout
		}
		delete(r.pending, env.id)
		cb(Response{From: m.From, Payload: env.payload})
		return
	}
	if r.handler == nil {
		return // no server installed: request is dropped
	}
	respPayload, size := r.handler(Request{From: m.From, Payload: env.payload, id: env.id})
	// Response delivery failures behave like network loss.
	_ = r.net.Send(r.node, m.From, size, rpcEnvelope{id: env.id, isResponse: true, payload: respPayload})
}
