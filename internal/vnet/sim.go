// Package vnet provides the virtual network substrate of the testbed: a
// deterministic discrete-event engine driving a virtual clock, the IP and
// DNS addressing scheme for emulated machines, and a message-passing
// network whose per-path delays and bandwidth follow the constellation
// topology.
//
// It replaces the host networking layer of the original Celestial (virtual
// network interfaces, tc qdiscs and the WireGuard host overlay) with an
// in-process equivalent: applications observe the same end-to-end latency,
// bandwidth and reachability effects, which is what the paper's evaluation
// measures.
package vnet

import (
	"container/heap"
	"fmt"
	"time"

	"celestial/internal/clock"
)

// event is one scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tie-breaker for deterministic ordering
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulation engine. Events run in
// timestamp order (FIFO among equal timestamps), advancing a virtual clock.
// All scheduling and execution must happen from one goroutine; this is what
// makes experiment runs bit-for-bit reproducible.
type Sim struct {
	clk *clock.Virtual
	pq  eventHeap
	seq uint64
}

// NewSim creates an engine whose virtual clock starts at the given time.
func NewSim(start time.Time) *Sim {
	return &Sim{clk: clock.NewVirtual(start)}
}

// Clock exposes the engine's clock for components that only need to read
// time.
func (s *Sim) Clock() clock.Clock { return s.clk }

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.clk.Now() }

// At schedules fn to run at an absolute virtual time, which must not be in
// the past.
func (s *Sim) At(t time.Time, fn func()) error {
	if t.Before(s.Now()) {
		return fmt.Errorf("vnet: cannot schedule event at %v before now %v", t, s.Now())
	}
	s.seq++
	heap.Push(&s.pq, event{at: t, seq: s.seq, fn: fn})
	return nil
}

// After schedules fn to run d after the current virtual time.
func (s *Sim) After(d time.Duration, fn func()) error {
	if d < 0 {
		return fmt.Errorf("vnet: negative delay %v", d)
	}
	return s.At(s.Now().Add(d), fn)
}

// Every schedules fn at t, t+interval, t+2*interval, ... for as long as fn
// returns true.
func (s *Sim) Every(start time.Time, interval time.Duration, fn func() bool) error {
	if interval <= 0 {
		return fmt.Errorf("vnet: interval must be positive, have %v", interval)
	}
	var tick func()
	at := start
	tick = func() {
		if !fn() {
			return
		}
		at = at.Add(interval)
		// Scheduling forward from a just-executed event cannot fail.
		if err := s.At(at, tick); err != nil {
			panic(fmt.Sprintf("vnet: rescheduling recurring event: %v", err))
		}
	}
	return s.At(start, tick)
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.pq) }

// Step executes the next event, advancing the clock to its timestamp. It
// returns false when no events remain.
func (s *Sim) Step() bool {
	if len(s.pq) == 0 {
		return false
	}
	e := heap.Pop(&s.pq).(event)
	if err := s.clk.Set(e.at); err != nil {
		// Events are popped in time order from a queue that rejects
		// past timestamps, so the clock can never move backwards.
		panic(fmt.Sprintf("vnet: clock regression: %v", err))
	}
	e.fn()
	return true
}

// RunUntil executes all events with timestamps ≤ t, then advances the
// clock to exactly t.
func (s *Sim) RunUntil(t time.Time) error {
	if t.Before(s.Now()) {
		return fmt.Errorf("vnet: cannot run until %v, already at %v", t, s.Now())
	}
	for len(s.pq) > 0 && !s.pq[0].at.After(t) {
		s.Step()
	}
	return s.clk.Set(t)
}

// Drain executes events until the queue is empty and returns how many ran.
// A limit guards against runaway recurring events; zero means no limit.
func (s *Sim) Drain(limit int) (int, error) {
	n := 0
	for s.Step() {
		n++
		if limit > 0 && n >= limit {
			if len(s.pq) > 0 {
				return n, fmt.Errorf("vnet: drain limit %d reached with %d events pending", limit, len(s.pq))
			}
		}
	}
	return n, nil
}
