// Package config defines the Celestial testbed configuration and its
// validator. To limit side effects and ensure repeatable testing, all
// parameters are passed within a single TOML configuration file (§3.1 of
// the paper): network parameters such as ISL bandwidth, compute parameters
// describing the resources of satellite and ground-station servers, orbital
// parameters per shell, and ground-station locations.
package config

import (
	"fmt"
	"io"
	"os"
	"time"

	"celestial/internal/bbox"
	"celestial/internal/geom"
	"celestial/internal/orbit"
	"celestial/internal/toml"
)

// Defaults mirroring the paper's experiment setups.
const (
	// DefaultResolution is the coordinator update interval (§4.1 uses
	// 2 s, §5.1 uses 5 s).
	DefaultResolution = 2 * time.Second
	// DefaultDuration is the experiment length (§4.1 runs 10 minutes).
	DefaultDuration = 10 * time.Minute
	// DefaultBandwidthKbps is the 10 Gb/s ISL and radio link bandwidth
	// assumed in §4.1.
	DefaultBandwidthKbps = 10_000_000
	// DefaultMinElevationDeg is the minimum elevation above the horizon
	// for ground-to-satellite links.
	DefaultMinElevationDeg = 30
	// DefaultVCPUs and DefaultMemMiB are the satellite server size used
	// in §4.1 (two vCPUs, 512 MiB).
	DefaultVCPUs  = 2
	DefaultMemMiB = 512
)

// NetworkParams are the link-level emulation parameters.
type NetworkParams struct {
	// BandwidthKbps is the capacity of ISLs.
	BandwidthKbps float64
	// GSTBandwidthKbps is the capacity of ground-to-satellite links;
	// defaults to BandwidthKbps when zero.
	GSTBandwidthKbps float64
	// MinElevationDeg is the minimum elevation above the horizon for a
	// ground station to use a satellite uplink.
	MinElevationDeg float64
	// AtmosphereCutoffKm is the altitude below which laser ISLs are
	// refracted and unavailable.
	AtmosphereCutoffKm float64
	// GSTConnectionType selects how many uplinks a ground station
	// gets: "all" (default) realizes a link to every visible
	// satellite so routing picks the best; "one" links only the
	// closest satellite, like a single-dish user terminal.
	GSTConnectionType string
}

// ComputeParams size the microVM of a satellite or ground-station server.
type ComputeParams struct {
	VCPUs int
	// MemMiB is the machine memory in MiB.
	MemMiB int
	// DiskMiB is the root filesystem overlay size in MiB.
	DiskMiB int
	// Kernel and RootFS name the boot artifacts. The emulation
	// substrate does not interpret them, but they are carried through
	// so user tooling can stage per-machine files, as in Celestial.
	Kernel string
	RootFS string
	// BootDelay is how long a machine takes from start to active.
	BootDelay time.Duration
}

// Shell is one constellation shell plus its parameter overrides.
type Shell struct {
	orbit.ShellConfig
	// Network overrides NetworkParams for links of this shell when any
	// field is non-zero.
	Network NetworkParams
	// Compute overrides the global compute parameters for this shell's
	// satellites when any field is non-zero.
	Compute ComputeParams
}

// GroundStation is a named ground-station server.
type GroundStation struct {
	Name     string
	Location geom.LatLon
	// Compute overrides the global compute parameters when non-zero.
	Compute ComputeParams
}

// Config is a complete testbed description.
type Config struct {
	// Name labels the testbed run.
	Name string
	// Duration is the experiment length.
	Duration time.Duration
	// Resolution is the constellation update interval.
	Resolution time.Duration
	// Epoch is the constellation start time. The zero value means
	// "use a fixed default epoch" so runs stay reproducible.
	Epoch time.Time
	// BoundingBox limits which satellites are emulated as active
	// machines. Defaults to the whole Earth.
	BoundingBox bbox.Box
	// Hosts is the number of emulated Celestial hosts machines are
	// distributed over.
	Hosts int
	// Network and Compute are the global defaults.
	Network NetworkParams
	Compute ComputeParams

	Shells         []Shell
	GroundStations []GroundStation
}

// DefaultEpoch is the reproducible default constellation epoch.
var DefaultEpoch = time.Date(2022, 4, 14, 12, 0, 0, 0, time.UTC)

// withDefaults fills unset fields.
func (c *Config) withDefaults() {
	if c.Duration == 0 {
		c.Duration = DefaultDuration
	}
	if c.Resolution == 0 {
		c.Resolution = DefaultResolution
	}
	if c.Epoch.IsZero() {
		c.Epoch = DefaultEpoch
	}
	if c.BoundingBox == (bbox.Box{}) {
		c.BoundingBox = bbox.WholeEarth
	}
	if c.Hosts == 0 {
		c.Hosts = 1
	}
	if c.Network.BandwidthKbps == 0 {
		c.Network.BandwidthKbps = DefaultBandwidthKbps
	}
	if c.Network.GSTBandwidthKbps == 0 {
		c.Network.GSTBandwidthKbps = c.Network.BandwidthKbps
	}
	if c.Network.MinElevationDeg == 0 {
		c.Network.MinElevationDeg = DefaultMinElevationDeg
	}
	if c.Network.AtmosphereCutoffKm == 0 {
		c.Network.AtmosphereCutoffKm = geom.AtmosphereCutoffKm
	}
	if c.Network.GSTConnectionType == "" {
		c.Network.GSTConnectionType = "all"
	}
	if c.Compute.VCPUs == 0 {
		c.Compute.VCPUs = DefaultVCPUs
	}
	if c.Compute.MemMiB == 0 {
		c.Compute.MemMiB = DefaultMemMiB
	}
	for i := range c.Shells {
		s := &c.Shells[i]
		if s.Name == "" {
			s.Name = fmt.Sprintf("shell-%d", i)
		}
		mergeNetwork(&s.Network, c.Network)
		mergeCompute(&s.Compute, c.Compute)
	}
	for i := range c.GroundStations {
		mergeCompute(&c.GroundStations[i].Compute, c.Compute)
	}
}

func mergeNetwork(dst *NetworkParams, def NetworkParams) {
	if dst.BandwidthKbps == 0 {
		dst.BandwidthKbps = def.BandwidthKbps
	}
	if dst.GSTBandwidthKbps == 0 {
		dst.GSTBandwidthKbps = def.GSTBandwidthKbps
	}
	if dst.MinElevationDeg == 0 {
		dst.MinElevationDeg = def.MinElevationDeg
	}
	if dst.AtmosphereCutoffKm == 0 {
		dst.AtmosphereCutoffKm = def.AtmosphereCutoffKm
	}
	if dst.GSTConnectionType == "" {
		dst.GSTConnectionType = def.GSTConnectionType
	}
}

func mergeCompute(dst *ComputeParams, def ComputeParams) {
	if dst.VCPUs == 0 {
		dst.VCPUs = def.VCPUs
	}
	if dst.MemMiB == 0 {
		dst.MemMiB = def.MemMiB
	}
	if dst.DiskMiB == 0 {
		dst.DiskMiB = def.DiskMiB
	}
	if dst.Kernel == "" {
		dst.Kernel = def.Kernel
	}
	if dst.RootFS == "" {
		dst.RootFS = def.RootFS
	}
	if dst.BootDelay == 0 {
		dst.BootDelay = def.BootDelay
	}
}

// Validate is Celestial's Validator component: it checks the complete
// configuration and returns a descriptive error for the first problem
// found. Validate assumes defaults have been applied (Parse does this).
func (c *Config) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("config: duration must be positive, have %v", c.Duration)
	}
	if c.Resolution <= 0 {
		return fmt.Errorf("config: resolution must be positive, have %v", c.Resolution)
	}
	if c.Resolution > c.Duration {
		return fmt.Errorf("config: resolution %v exceeds duration %v", c.Resolution, c.Duration)
	}
	if c.Hosts <= 0 {
		return fmt.Errorf("config: hosts must be positive, have %d", c.Hosts)
	}
	if err := c.BoundingBox.Validate(); err != nil {
		return err
	}
	if len(c.Shells) == 0 {
		return fmt.Errorf("config: at least one shell is required")
	}
	names := map[string]bool{}
	for i, s := range c.Shells {
		if err := s.ShellConfig.Validate(); err != nil {
			return fmt.Errorf("config: shell %d: %w", i, err)
		}
		if names[s.Name] {
			return fmt.Errorf("config: duplicate shell name %q", s.Name)
		}
		names[s.Name] = true
		if s.Network.MinElevationDeg < 0 || s.Network.MinElevationDeg >= 90 {
			return fmt.Errorf("config: shell %q: min elevation %v outside [0, 90)", s.Name, s.Network.MinElevationDeg)
		}
		if s.Network.BandwidthKbps <= 0 {
			return fmt.Errorf("config: shell %q: bandwidth must be positive", s.Name)
		}
		if s.Compute.VCPUs <= 0 || s.Compute.MemMiB <= 0 {
			return fmt.Errorf("config: shell %q: compute allocation must be positive", s.Name)
		}
		if t := s.Network.GSTConnectionType; t != "all" && t != "one" {
			return fmt.Errorf("config: shell %q: ground station connection type %q (want \"all\" or \"one\")", s.Name, t)
		}
	}
	gstNames := map[string]bool{}
	for i, g := range c.GroundStations {
		if g.Name == "" {
			return fmt.Errorf("config: ground station %d has no name", i)
		}
		if gstNames[g.Name] {
			return fmt.Errorf("config: duplicate ground station name %q", g.Name)
		}
		gstNames[g.Name] = true
		if g.Location.LatDeg < -90 || g.Location.LatDeg > 90 {
			return fmt.Errorf("config: ground station %q: latitude %v outside [-90, 90]", g.Name, g.Location.LatDeg)
		}
		if g.Location.LonDeg < -180 || g.Location.LonDeg > 180 {
			return fmt.Errorf("config: ground station %q: longitude %v outside [-180, 180]", g.Name, g.Location.LonDeg)
		}
		if g.Compute.VCPUs <= 0 || g.Compute.MemMiB <= 0 {
			return fmt.Errorf("config: ground station %q: compute allocation must be positive", g.Name)
		}
	}
	return nil
}

// TotalSatellites returns the number of satellites across all shells.
func (c *Config) TotalSatellites() int {
	total := 0
	for _, s := range c.Shells {
		total += s.Size()
	}
	return total
}

// EpochJulian returns the constellation epoch as a Julian date.
func (c *Config) EpochJulian() float64 {
	e := c.Epoch.UTC()
	return geom.JulianDate(e.Year(), int(e.Month()), e.Day(),
		e.Hour(), e.Minute(), float64(e.Second())+float64(e.Nanosecond())/1e9)
}

// Parse reads a TOML configuration, applies defaults, and validates it.
func Parse(r io.Reader) (*Config, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("config: reading: %w", err)
	}
	doc, err := toml.Parse(string(data))
	if err != nil {
		return nil, err
	}
	return FromTable(doc)
}

// ParseFile reads and validates a TOML configuration file.
func ParseFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Finalize applies defaults and validates a programmatically built Config.
func Finalize(c *Config) error {
	c.withDefaults()
	return c.Validate()
}

// FromTable builds a Config from an already-parsed TOML table using the
// same schema as Parse — e.g. the inline [testbed] table of a scenario
// file — applying defaults and validating.
func FromTable(tbl map[string]any) (*Config, error) {
	cfg, err := fromDoc(tbl)
	if err != nil {
		return nil, err
	}
	if err := Finalize(cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

// fromDoc maps a parsed TOML tree to a Config.
func fromDoc(doc toml.Doc) (*Config, error) {
	c := &Config{}
	var err error

	if c.Name, _, err = toml.GetString(doc, "name"); err != nil {
		return nil, err
	}
	if v, ok, err := toml.GetFloat(doc, "duration"); err != nil {
		return nil, err
	} else if ok {
		c.Duration = time.Duration(v * float64(time.Second))
	}
	if v, ok, err := toml.GetFloat(doc, "resolution"); err != nil {
		return nil, err
	} else if ok {
		c.Resolution = time.Duration(v * float64(time.Second))
	}
	if v, ok, err := toml.GetInt(doc, "hosts"); err != nil {
		return nil, err
	} else if ok {
		c.Hosts = int(v)
	}
	if s, ok, err := toml.GetString(doc, "epoch"); err != nil {
		return nil, err
	} else if ok {
		c.Epoch, err = time.Parse(time.RFC3339, s)
		if err != nil {
			return nil, fmt.Errorf("config: epoch: %w", err)
		}
	}
	if arr, ok, err := toml.GetFloatArray(doc, "bbox"); err != nil {
		return nil, err
	} else if ok {
		if len(arr) != 4 {
			return nil, fmt.Errorf("config: bbox must have 4 elements [latMin, lonMin, latMax, lonMax], have %d", len(arr))
		}
		c.BoundingBox = bbox.Box{LatMinDeg: arr[0], LonMinDeg: arr[1], LatMaxDeg: arr[2], LonMaxDeg: arr[3]}
	}

	if tbl, err := toml.GetTable(doc, "network_params"); err != nil {
		return nil, err
	} else if tbl != nil {
		if c.Network, err = networkFromTable(tbl); err != nil {
			return nil, err
		}
	}
	if tbl, err := toml.GetTable(doc, "compute_params"); err != nil {
		return nil, err
	} else if tbl != nil {
		if c.Compute, err = computeFromTable(tbl); err != nil {
			return nil, err
		}
	}

	shells, err := toml.GetTableArray(doc, "shell")
	if err != nil {
		return nil, err
	}
	for i, tbl := range shells {
		s, err := shellFromTable(tbl)
		if err != nil {
			return nil, fmt.Errorf("config: shell %d: %w", i, err)
		}
		c.Shells = append(c.Shells, s)
	}

	gsts, err := toml.GetTableArray(doc, "ground_station")
	if err != nil {
		return nil, err
	}
	for i, tbl := range gsts {
		g, err := gstFromTable(tbl)
		if err != nil {
			return nil, fmt.Errorf("config: ground station %d: %w", i, err)
		}
		c.GroundStations = append(c.GroundStations, g)
	}
	return c, nil
}

func networkFromTable(tbl map[string]any) (NetworkParams, error) {
	var n NetworkParams
	var err error
	if n.BandwidthKbps, _, err = toml.GetFloat(tbl, "bandwidth_kbits"); err != nil {
		return n, err
	}
	if n.GSTBandwidthKbps, _, err = toml.GetFloat(tbl, "gst_bandwidth_kbits"); err != nil {
		return n, err
	}
	if n.MinElevationDeg, _, err = toml.GetFloat(tbl, "min_elevation"); err != nil {
		return n, err
	}
	if n.AtmosphereCutoffKm, _, err = toml.GetFloat(tbl, "atmosphere_cutoff_km"); err != nil {
		return n, err
	}
	if n.GSTConnectionType, _, err = toml.GetString(tbl, "ground_station_connection_type"); err != nil {
		return n, err
	}
	return n, nil
}

func computeFromTable(tbl map[string]any) (ComputeParams, error) {
	var p ComputeParams
	if v, _, err := toml.GetInt(tbl, "vcpu_count"); err != nil {
		return p, err
	} else {
		p.VCPUs = int(v)
	}
	if v, _, err := toml.GetInt(tbl, "mem_size_mib"); err != nil {
		return p, err
	} else {
		p.MemMiB = int(v)
	}
	if v, _, err := toml.GetInt(tbl, "disk_size_mib"); err != nil {
		return p, err
	} else {
		p.DiskMiB = int(v)
	}
	var err error
	if p.Kernel, _, err = toml.GetString(tbl, "kernel"); err != nil {
		return p, err
	}
	if p.RootFS, _, err = toml.GetString(tbl, "rootfs"); err != nil {
		return p, err
	}
	if v, _, err := toml.GetFloat(tbl, "boot_delay"); err != nil {
		return p, err
	} else {
		p.BootDelay = time.Duration(v * float64(time.Second))
	}
	return p, nil
}

func shellFromTable(tbl map[string]any) (Shell, error) {
	var s Shell
	var err error
	if s.Name, _, err = toml.GetString(tbl, "name"); err != nil {
		return s, err
	}
	if v, ok, err := toml.GetInt(tbl, "planes"); err != nil {
		return s, err
	} else if ok {
		s.Planes = int(v)
	}
	if v, ok, err := toml.GetInt(tbl, "sats"); err != nil {
		return s, err
	} else if ok {
		s.SatsPerPlane = int(v)
	}
	if s.AltitudeKm, _, err = toml.GetFloat(tbl, "altitude_km"); err != nil {
		return s, err
	}
	if s.InclinationDeg, _, err = toml.GetFloat(tbl, "inclination"); err != nil {
		return s, err
	}
	if s.ArcDeg, _, err = toml.GetFloat(tbl, "arc_of_ascending_nodes"); err != nil {
		return s, err
	}
	if s.Eccentricity, _, err = toml.GetFloat(tbl, "eccentricity"); err != nil {
		return s, err
	}
	if v, ok, err := toml.GetInt(tbl, "phasing_factor"); err != nil {
		return s, err
	} else if ok {
		s.PhasingFactor = int(v)
	}
	if m, ok, err := toml.GetString(tbl, "model"); err != nil {
		return s, err
	} else if ok {
		switch m {
		case "sgp4":
			s.Model = orbit.ModelSGP4
		case "kepler":
			s.Model = orbit.ModelKepler
		default:
			return s, fmt.Errorf("unknown model %q (want sgp4 or kepler)", m)
		}
	}
	if sub, err := toml.GetTable(tbl, "network_params"); err != nil {
		return s, err
	} else if sub != nil {
		if s.Network, err = networkFromTable(sub); err != nil {
			return s, err
		}
	}
	if sub, err := toml.GetTable(tbl, "compute_params"); err != nil {
		return s, err
	} else if sub != nil {
		if s.Compute, err = computeFromTable(sub); err != nil {
			return s, err
		}
	}
	return s, nil
}

func gstFromTable(tbl map[string]any) (GroundStation, error) {
	var g GroundStation
	var err error
	if g.Name, _, err = toml.GetString(tbl, "name"); err != nil {
		return g, err
	}
	if g.Location.LatDeg, _, err = toml.GetFloat(tbl, "lat"); err != nil {
		return g, err
	}
	if g.Location.LonDeg, _, err = toml.GetFloat(tbl, "long"); err != nil {
		return g, err
	}
	if sub, err := toml.GetTable(tbl, "compute_params"); err != nil {
		return g, err
	} else if sub != nil {
		if g.Compute, err = computeFromTable(sub); err != nil {
			return g, err
		}
	}
	return g, nil
}
