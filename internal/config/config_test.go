package config

import (
	"os"
	"strings"
	"testing"
	"time"

	"celestial/internal/bbox"
	"celestial/internal/orbit"
)

// paperConfig is a full configuration close to the §4.1 experiment setup.
const paperConfig = `
name = "meetup-west-africa"
duration = 600          # 10 minutes
resolution = 2          # coordinator update interval, seconds
hosts = 3
epoch = "2022-04-14T12:00:00Z"
bbox = [-5.0, -20.0, 25.0, 25.0]

[network_params]
bandwidth_kbits = 10_000_000  # 10 Gb/s ISLs and radio links
min_elevation = 40

[compute_params]
vcpu_count = 2
mem_size_mib = 512
boot_delay = 0.8

[[shell]]
name = "starlink-1"
planes = 72
sats = 22
altitude_km = 550
inclination = 53.0
arc_of_ascending_nodes = 360.0
model = "sgp4"

[[ground_station]]
name = "accra"
lat = 5.6037
long = -0.1870
[ground_station.compute_params]
vcpu_count = 4
mem_size_mib = 4096

[[ground_station]]
name = "abuja"
lat = 9.0765
long = 7.3986

[[ground_station]]
name = "johannesburg"
lat = -26.2041
long = 28.0473
`

func TestParsePaperConfig(t *testing.T) {
	cfg, err := Parse(strings.NewReader(paperConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "meetup-west-africa" {
		t.Errorf("name = %q", cfg.Name)
	}
	if cfg.Duration != 10*time.Minute {
		t.Errorf("duration = %v", cfg.Duration)
	}
	if cfg.Resolution != 2*time.Second {
		t.Errorf("resolution = %v", cfg.Resolution)
	}
	if cfg.Hosts != 3 {
		t.Errorf("hosts = %d", cfg.Hosts)
	}
	if cfg.Epoch.Year() != 2022 || cfg.Epoch.Month() != 4 {
		t.Errorf("epoch = %v", cfg.Epoch)
	}
	if cfg.BoundingBox != (bbox.Box{LatMinDeg: -5, LonMinDeg: -20, LatMaxDeg: 25, LonMaxDeg: 25}) {
		t.Errorf("bbox = %v", cfg.BoundingBox)
	}
	if cfg.Network.BandwidthKbps != 10_000_000 {
		t.Errorf("bandwidth = %v", cfg.Network.BandwidthKbps)
	}
	if cfg.Network.MinElevationDeg != 40 {
		t.Errorf("min elevation = %v", cfg.Network.MinElevationDeg)
	}
	if len(cfg.Shells) != 1 {
		t.Fatalf("shells = %d", len(cfg.Shells))
	}
	s := cfg.Shells[0]
	if s.Planes != 72 || s.SatsPerPlane != 22 || s.AltitudeKm != 550 {
		t.Errorf("shell = %+v", s.ShellConfig)
	}
	if s.Model != orbit.ModelSGP4 {
		t.Errorf("model = %v", s.Model)
	}
	// Shell inherits global params.
	if s.Network.BandwidthKbps != 10_000_000 || s.Compute.VCPUs != 2 {
		t.Errorf("shell inherited params wrong: %+v %+v", s.Network, s.Compute)
	}
	if s.Compute.BootDelay != 800*time.Millisecond {
		t.Errorf("boot delay = %v", s.Compute.BootDelay)
	}
	if len(cfg.GroundStations) != 3 {
		t.Fatalf("ground stations = %d", len(cfg.GroundStations))
	}
	// Accra overrides compute; Abuja inherits.
	if cfg.GroundStations[0].Compute.VCPUs != 4 || cfg.GroundStations[0].Compute.MemMiB != 4096 {
		t.Errorf("accra compute = %+v", cfg.GroundStations[0].Compute)
	}
	if cfg.GroundStations[1].Compute.VCPUs != 2 {
		t.Errorf("abuja compute = %+v", cfg.GroundStations[1].Compute)
	}
	if cfg.TotalSatellites() != 1584 {
		t.Errorf("total satellites = %d", cfg.TotalSatellites())
	}
}

func TestParseMinimalConfigAppliesDefaults(t *testing.T) {
	cfg, err := Parse(strings.NewReader(`
[[shell]]
planes = 6
sats = 11
altitude_km = 780
inclination = 90
`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Duration != DefaultDuration {
		t.Errorf("duration = %v", cfg.Duration)
	}
	if cfg.Resolution != DefaultResolution {
		t.Errorf("resolution = %v", cfg.Resolution)
	}
	if cfg.BoundingBox != bbox.WholeEarth {
		t.Errorf("bbox = %v", cfg.BoundingBox)
	}
	if cfg.Hosts != 1 {
		t.Errorf("hosts = %d", cfg.Hosts)
	}
	if cfg.Epoch != DefaultEpoch {
		t.Errorf("epoch = %v", cfg.Epoch)
	}
	if cfg.Network.BandwidthKbps != DefaultBandwidthKbps {
		t.Errorf("bandwidth = %v", cfg.Network.BandwidthKbps)
	}
	if cfg.Network.GSTBandwidthKbps != DefaultBandwidthKbps {
		t.Errorf("gst bandwidth = %v", cfg.Network.GSTBandwidthKbps)
	}
	if cfg.Shells[0].Name != "shell-0" {
		t.Errorf("default shell name = %q", cfg.Shells[0].Name)
	}
	if cfg.Shells[0].Compute.VCPUs != DefaultVCPUs {
		t.Errorf("default vcpus = %d", cfg.Shells[0].Compute.VCPUs)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Config {
		return &Config{
			Shells: []Shell{{ShellConfig: orbit.ShellConfig{
				Planes: 6, SatsPerPlane: 11, AltitudeKm: 780, InclinationDeg: 90,
			}}},
		}
	}
	tests := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"no shells", func(c *Config) { c.Shells = nil }, "at least one shell"},
		{"bad shell", func(c *Config) { c.Shells[0].Planes = 0 }, "planes"},
		{"negative duration", func(c *Config) { c.Duration = -time.Second }, "duration"},
		{"resolution > duration", func(c *Config) { c.Resolution = time.Hour }, "resolution"},
		{"bad bbox", func(c *Config) { c.BoundingBox = bbox.Box{LatMinDeg: 50, LatMaxDeg: 10, LonMinDeg: 0, LonMaxDeg: 10} }, "latitude"},
		{"duplicate shells", func(c *Config) {
			c.Shells = append(c.Shells, c.Shells[0])
			c.Shells[0].Name = "x"
			c.Shells[1].Name = "x"
		}, "duplicate shell"},
		{"unnamed gst", func(c *Config) {
			c.GroundStations = []GroundStation{{}}
		}, "no name"},
		{"duplicate gst", func(c *Config) {
			c.GroundStations = []GroundStation{
				{Name: "a"}, {Name: "a"},
			}
		}, "duplicate ground station"},
		{"bad gst lat", func(c *Config) {
			c.GroundStations = []GroundStation{{Name: "a"}}
			c.GroundStations[0].Location.LatDeg = 120
		}, "latitude"},
		{"bad min elevation", func(c *Config) { c.Shells[0].Network.MinElevationDeg = 95 }, "elevation"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := base()
			tt.mutate(c)
			err := Finalize(c)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Finalize = %v, want error mentioning %q", err, tt.want)
			}
		})
	}
}

func TestGSTConnectionType(t *testing.T) {
	cfg, err := Parse(strings.NewReader(`
[network_params]
ground_station_connection_type = "one"
[[shell]]
planes = 6
sats = 11
altitude_km = 780
inclination = 90
`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shells[0].Network.GSTConnectionType != "one" {
		t.Errorf("type = %q", cfg.Shells[0].Network.GSTConnectionType)
	}
	// Default is "all".
	def, err := Parse(strings.NewReader(`
[[shell]]
planes = 1
sats = 1
altitude_km = 550
inclination = 53
`))
	if err != nil {
		t.Fatal(err)
	}
	if def.Shells[0].Network.GSTConnectionType != "all" {
		t.Errorf("default type = %q", def.Shells[0].Network.GSTConnectionType)
	}
	// Invalid values are rejected.
	if _, err := Parse(strings.NewReader(`
[network_params]
ground_station_connection_type = "some"
[[shell]]
planes = 1
sats = 1
altitude_km = 550
inclination = 53
`)); err == nil || !strings.Contains(err.Error(), "connection type") {
		t.Errorf("err = %v", err)
	}
}

func TestFinalizeValidConfig(t *testing.T) {
	c := &Config{
		Shells: []Shell{{ShellConfig: orbit.ShellConfig{
			Planes: 6, SatsPerPlane: 11, AltitudeKm: 780, InclinationDeg: 90,
		}}},
		GroundStations: []GroundStation{{Name: "hawaii"}},
	}
	if err := Finalize(c); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if c.GroundStations[0].Compute.VCPUs != DefaultVCPUs {
		t.Error("ground station did not inherit compute defaults")
	}
}

func TestParseBadEpoch(t *testing.T) {
	_, err := Parse(strings.NewReader(`
epoch = "not a time"
[[shell]]
planes = 1
sats = 1
altitude_km = 550
inclination = 53
`))
	if err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Errorf("err = %v", err)
	}
}

func TestParseBadBBoxLength(t *testing.T) {
	_, err := Parse(strings.NewReader(`
bbox = [1.0, 2.0]
[[shell]]
planes = 1
sats = 1
altitude_km = 550
inclination = 53
`))
	if err == nil || !strings.Contains(err.Error(), "bbox") {
		t.Errorf("err = %v", err)
	}
}

func TestParseBadModel(t *testing.T) {
	_, err := Parse(strings.NewReader(`
[[shell]]
planes = 1
sats = 1
altitude_km = 550
inclination = 53
model = "magic"
`))
	if err == nil || !strings.Contains(err.Error(), "model") {
		t.Errorf("err = %v", err)
	}
}

func TestEpochJulian(t *testing.T) {
	c := &Config{Epoch: time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC)}
	if jd := c.EpochJulian(); jd != 2451545.0 {
		t.Errorf("jd = %v", jd)
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent/config.toml"); err == nil {
		t.Error("ParseFile accepted missing file")
	}
}

func TestParseFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/c.toml"
	if err := writeFile(path, paperConfig); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "meetup-west-africa" {
		t.Errorf("name = %q", cfg.Name)
	}
}

// writeFile is a tiny helper for file round-trip tests.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
