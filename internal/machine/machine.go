// Package machine is the testbed's stand-in for Firecracker microVMs: each
// satellite server and ground station is one Machine with a resource
// allocation (vCPUs, memory, disk), a boot phase, suspend/resume driven by
// the bounding box, and fault injection ("users can change machine
// parameters at runtime and even terminate and reboot machines to model
// faults, e.g., caused by radiation", §3.1 of the paper).
//
// The lifecycle mirrors Firecracker's observable behavior:
//
//	Created ─Start→ Booting ─CompleteBoot→ Active ⇄ Suspended
//	   (any running state) ─Crash→ Failed ─Start→ Booting
//	   (any state) ─Stop→ Stopped ─Start→ Booting
//
// Like Firecracker microVMs, a suspended machine keeps its memory
// reservation on the host: "each keeps a virtio memory device that blocks
// a fixed portion of the host's memory for the VM" (§4.2); hosts account
// for this in their memory usage traces.
package machine

import (
	"fmt"
	"sync"
	"time"
)

// State is the lifecycle state of a machine.
type State int

const (
	// Created: defined, never started.
	Created State = iota
	// Booting: started, kernel not yet up.
	Booting
	// Active: serving.
	Active
	// Suspended: paused by the bounding box; memory stays reserved.
	Suspended
	// Failed: crashed (e.g. radiation-induced); restartable.
	Failed
	// Stopped: shut down deliberately.
	Stopped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Booting:
		return "booting"
	case Active:
		return "active"
	case Suspended:
		return "suspended"
	case Failed:
		return "failed"
	case Stopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Resources is a machine's allocation.
type Resources struct {
	VCPUs   int
	MemMiB  int
	DiskMiB int
}

// Transition records one lifecycle change for inspection and debugging.
type Transition struct {
	At       time.Time
	From, To State
	Reason   string
}

// Machine is one emulated microVM. All methods are safe for concurrent
// use.
type Machine struct {
	id   int
	name string
	res  Resources
	// bootDelay is how long Booting lasts; the host schedules
	// CompleteBoot accordingly.
	bootDelay time.Duration

	mu          sync.Mutex
	state       State
	throttle    float64 // fraction of allocated CPU available, (0, 1]
	transitions []Transition
	bootCount   int
}

// New creates a machine in the Created state.
func New(id int, name string, res Resources, bootDelay time.Duration) (*Machine, error) {
	if res.VCPUs <= 0 {
		return nil, fmt.Errorf("machine %q: vcpus must be positive, have %d", name, res.VCPUs)
	}
	if res.MemMiB <= 0 {
		return nil, fmt.Errorf("machine %q: memory must be positive, have %d MiB", name, res.MemMiB)
	}
	if bootDelay < 0 {
		return nil, fmt.Errorf("machine %q: negative boot delay %v", name, bootDelay)
	}
	return &Machine{
		id: id, name: name, res: res, bootDelay: bootDelay,
		state: Created, throttle: 1,
	}, nil
}

// ID returns the machine's node ID.
func (m *Machine) ID() int { return m.id }

// Name returns the machine's name.
func (m *Machine) Name() string { return m.name }

// Resources returns the machine's allocation.
func (m *Machine) Resources() Resources { return m.res }

// BootDelay returns how long the machine takes to boot.
func (m *Machine) BootDelay() time.Duration { return m.bootDelay }

// State returns the current lifecycle state.
func (m *Machine) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// BootCount returns how many times the machine has entered Booting.
func (m *Machine) BootCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bootCount
}

// Transitions returns a copy of the transition log.
func (m *Machine) Transitions() []Transition {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Transition, len(m.transitions))
	copy(out, m.transitions)
	return out
}

// transitionError describes an illegal lifecycle transition.
func transitionError(m *Machine, op string) error {
	return fmt.Errorf("machine %q: cannot %s from state %v", m.name, op, m.state)
}

func (m *Machine) record(at time.Time, to State, reason string) {
	m.transitions = append(m.transitions, Transition{At: at, From: m.state, To: to, Reason: reason})
	m.state = to
}

// Start begins booting a Created, Stopped or Failed machine.
func (m *Machine) Start(now time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case Created, Stopped, Failed:
		m.record(now, Booting, "start")
		m.bootCount++
		return nil
	default:
		return transitionError(m, "start")
	}
}

// CompleteBoot moves a Booting machine to Active. The host calls this
// bootDelay after Start.
func (m *Machine) CompleteBoot(now time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != Booting {
		return transitionError(m, "complete boot")
	}
	m.record(now, Active, "boot complete")
	return nil
}

// Suspend pauses an Active machine (bounding-box exit). Its memory stays
// reserved on the host.
func (m *Machine) Suspend(now time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != Active {
		return transitionError(m, "suspend")
	}
	m.record(now, Suspended, "bounding box exit")
	return nil
}

// Resume reactivates a Suspended machine (bounding-box entry). Resuming is
// fast — no boot phase — matching Firecracker's suspend/resume support.
func (m *Machine) Resume(now time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != Suspended {
		return transitionError(m, "resume")
	}
	m.record(now, Active, "bounding box entry")
	return nil
}

// Crash fails a running (Booting, Active or Suspended) machine, e.g. for a
// radiation-induced single event upset.
func (m *Machine) Crash(now time.Time, reason string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case Booting, Active, Suspended:
		m.record(now, Failed, reason)
		return nil
	default:
		return transitionError(m, "crash")
	}
}

// Stop shuts the machine down deliberately from any state except Stopped.
func (m *Machine) Stop(now time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == Stopped {
		return transitionError(m, "stop")
	}
	m.record(now, Stopped, "stop")
	return nil
}

// Throttle returns the fraction of the allocated CPU currently available.
func (m *Machine) Throttle() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.throttle
}

// SetThrottle changes the CPU fraction available to the machine, modeling
// the cgroup cpu controls Celestial uses "to gain more finely grained
// control over the CPU cycles a server process is allowed to use" (§3.1),
// including temporary performance degradation after radiation events.
func (m *Machine) SetThrottle(f float64) error {
	if f <= 0 || f > 1 {
		return fmt.Errorf("machine %q: throttle %v outside (0, 1]", m.name, f)
	}
	m.mu.Lock()
	m.throttle = f
	m.mu.Unlock()
	return nil
}

// Running reports whether the machine can currently serve requests.
func (m *Machine) Running() bool { return m.State() == Active }

// HoldsMemory reports whether the machine's memory is reserved on its
// host. Booted machines keep their reservation through suspension; only
// never-booted, stopped, and failed machines release it.
func (m *Machine) HoldsMemory() bool {
	switch m.State() {
	case Booting, Active, Suspended:
		return true
	default:
		return false
	}
}
