package machine

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var now = time.Date(2022, 4, 14, 12, 0, 0, 0, time.UTC)

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(1, "0.0", Resources{VCPUs: 2, MemMiB: 512}, 800*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, "m", Resources{VCPUs: 0, MemMiB: 512}, 0); err == nil {
		t.Error("accepted zero vcpus")
	}
	if _, err := New(0, "m", Resources{VCPUs: 1, MemMiB: 0}, 0); err == nil {
		t.Error("accepted zero memory")
	}
	if _, err := New(0, "m", Resources{VCPUs: 1, MemMiB: 1}, -time.Second); err == nil {
		t.Error("accepted negative boot delay")
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	m := newMachine(t)
	if m.State() != Created {
		t.Fatalf("initial state = %v", m.State())
	}
	if err := m.Start(now); err != nil {
		t.Fatal(err)
	}
	if m.State() != Booting {
		t.Fatalf("state = %v", m.State())
	}
	if m.Running() {
		t.Error("booting machine reported running")
	}
	if err := m.CompleteBoot(now.Add(m.BootDelay())); err != nil {
		t.Fatal(err)
	}
	if !m.Running() {
		t.Error("active machine not running")
	}
	if err := m.Suspend(now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if m.State() != Suspended || m.Running() {
		t.Errorf("state = %v", m.State())
	}
	if !m.HoldsMemory() {
		t.Error("suspended machine released memory")
	}
	if err := m.Resume(now.Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if m.State() != Active {
		t.Errorf("state = %v", m.State())
	}
	if err := m.Stop(now.Add(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if m.State() != Stopped || m.HoldsMemory() {
		t.Errorf("state = %v", m.State())
	}
	if m.BootCount() != 1 {
		t.Errorf("boot count = %d", m.BootCount())
	}
}

func TestIllegalTransitions(t *testing.T) {
	m := newMachine(t)
	if err := m.CompleteBoot(now); err == nil {
		t.Error("completed boot from Created")
	}
	if err := m.Suspend(now); err == nil {
		t.Error("suspended from Created")
	}
	if err := m.Resume(now); err == nil {
		t.Error("resumed from Created")
	}
	if err := m.Crash(now, "x"); err == nil {
		t.Error("crashed from Created")
	}
	if err := m.Start(now); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(now); err == nil {
		t.Error("double start")
	}
	if err := m.CompleteBoot(now); err != nil {
		t.Fatal(err)
	}
	if err := m.Resume(now); err == nil {
		t.Error("resumed active machine")
	}
	if err := m.Stop(now); err != nil {
		t.Fatal(err)
	}
	if err := m.Stop(now); err == nil {
		t.Error("double stop")
	}
	if err := m.Suspend(now); err == nil {
		t.Error("suspended stopped machine")
	}
	// Error text names the machine and state.
	err := m.Suspend(now)
	if err == nil || !strings.Contains(err.Error(), "0.0") || !strings.Contains(err.Error(), "stopped") {
		t.Errorf("error = %v", err)
	}
}

func TestCrashAndRecover(t *testing.T) {
	m := newMachine(t)
	if err := m.Start(now); err != nil {
		t.Fatal(err)
	}
	if err := m.CompleteBoot(now); err != nil {
		t.Fatal(err)
	}
	if err := m.Crash(now.Add(time.Minute), "radiation SEU"); err != nil {
		t.Fatal(err)
	}
	if m.State() != Failed || m.HoldsMemory() {
		t.Errorf("state = %v", m.State())
	}
	// Failed machines can be restarted (reboot after SEU).
	if err := m.Start(now.Add(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if m.State() != Booting {
		t.Errorf("state = %v", m.State())
	}
	if m.BootCount() != 2 {
		t.Errorf("boot count = %d", m.BootCount())
	}
	// The transition log records the crash reason.
	var found bool
	for _, tr := range m.Transitions() {
		if tr.To == Failed && tr.Reason == "radiation SEU" {
			found = true
		}
	}
	if !found {
		t.Error("crash reason not recorded")
	}
}

func TestCrashWhileSuspended(t *testing.T) {
	m := newMachine(t)
	if err := m.Start(now); err != nil {
		t.Fatal(err)
	}
	if err := m.CompleteBoot(now); err != nil {
		t.Fatal(err)
	}
	if err := m.Suspend(now); err != nil {
		t.Fatal(err)
	}
	if err := m.Crash(now, "cosmic ray"); err != nil {
		t.Errorf("crash while suspended: %v", err)
	}
}

func TestThrottle(t *testing.T) {
	m := newMachine(t)
	if m.Throttle() != 1 {
		t.Errorf("initial throttle = %v", m.Throttle())
	}
	if err := m.SetThrottle(0.25); err != nil {
		t.Fatal(err)
	}
	if m.Throttle() != 0.25 {
		t.Errorf("throttle = %v", m.Throttle())
	}
	for _, bad := range []float64{0, -1, 1.5} {
		if err := m.SetThrottle(bad); err == nil {
			t.Errorf("accepted throttle %v", bad)
		}
	}
}

func TestStateString(t *testing.T) {
	wants := map[State]string{
		Created: "created", Booting: "booting", Active: "active",
		Suspended: "suspended", Failed: "failed", Stopped: "stopped",
		State(99): "state(99)",
	}
	for s, w := range wants {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestTransitionsCopied(t *testing.T) {
	m := newMachine(t)
	if err := m.Start(now); err != nil {
		t.Fatal(err)
	}
	tr := m.Transitions()
	if len(tr) != 1 || tr[0].From != Created || tr[0].To != Booting {
		t.Fatalf("transitions = %+v", tr)
	}
	tr[0].Reason = "mutated"
	if m.Transitions()[0].Reason == "mutated" {
		t.Error("Transitions exposed internal slice")
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := newMachine(t)
	if err := m.Start(now); err != nil {
		t.Fatal(err)
	}
	if err := m.CompleteBoot(now); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = m.State()
				_ = m.Running()
				_ = m.Suspend(now)
				_ = m.Resume(now)
			}
		}()
	}
	wg.Wait()
	// After an even number of suspend/resume pairs in each goroutine,
	// the machine must be in a consistent state.
	if s := m.State(); s != Active && s != Suspended {
		t.Errorf("final state = %v", s)
	}
}
