package machine

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestRandomOperationSequences drives machines through random operation
// sequences and verifies the lifecycle invariants hold at every step:
// the state is always one of the defined states, Running implies Active,
// memory is held exactly in Booting/Active/Suspended, the boot count
// matches successful Start calls, and the transition log is consistent
// (every transition's From equals the previous To).
func TestRandomOperationSequences(t *testing.T) {
	ops := []func(*Machine, time.Time) error{
		func(m *Machine, at time.Time) error { return m.Start(at) },
		func(m *Machine, at time.Time) error { return m.CompleteBoot(at) },
		func(m *Machine, at time.Time) error { return m.Suspend(at) },
		func(m *Machine, at time.Time) error { return m.Resume(at) },
		func(m *Machine, at time.Time) error { return m.Crash(at, "fuzz") },
		func(m *Machine, at time.Time) error { return m.Stop(at) },
		func(m *Machine, at time.Time) error { return m.SetThrottle(0.5) },
	}
	err := quick.Check(func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := New(1, "fuzz", Resources{VCPUs: 1, MemMiB: 64}, time.Second)
		if err != nil {
			return false
		}
		at := now
		starts := 0
		for i := 0; i < int(steps); i++ {
			op := rng.Intn(len(ops))
			before := m.State()
			err := ops[op](m, at)
			after := m.State()
			at = at.Add(time.Second)

			if err != nil && before != after {
				t.Logf("failed op %d changed state %v -> %v", op, before, after)
				return false
			}
			if err == nil && op == 0 {
				starts++
			}
			switch after {
			case Created, Booting, Active, Suspended, Failed, Stopped:
			default:
				t.Logf("invalid state %v", after)
				return false
			}
			if m.Running() != (after == Active) {
				return false
			}
			wantMem := after == Booting || after == Active || after == Suspended
			if m.HoldsMemory() != wantMem {
				return false
			}
			if m.BootCount() != starts {
				t.Logf("boot count %d != successful starts %d", m.BootCount(), starts)
				return false
			}
		}
		// Transition log is a consistent chain from Created.
		prev := Created
		for _, tr := range m.Transitions() {
			if tr.From != prev {
				t.Logf("transition chain broken: %v -> %v after %v", tr.From, tr.To, prev)
				return false
			}
			prev = tr.To
		}
		return prev == m.State()
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
