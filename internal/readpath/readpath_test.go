package readpath

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"celestial/internal/config"
	"celestial/internal/constellation"
	"celestial/internal/coordinator"
	"celestial/internal/geom"
	"celestial/internal/httpapi"
	"celestial/internal/httpapi/middleware"
	"celestial/internal/orbit"
)

// testCoordinator builds and starts a small started constellation at the
// given update resolution (the httpapi test fixture).
func testCoordinator(t testing.TB, resolution time.Duration) *coordinator.Coordinator {
	t.Helper()
	cfg := &config.Config{
		Duration:   10 * time.Minute,
		Resolution: resolution,
		Shells: []config.Shell{{
			ShellConfig: orbit.ShellConfig{
				Name: "starlink-1", Planes: 24, SatsPerPlane: 22, AltitudeKm: 550,
				InclinationDeg: 53, ArcDeg: 360, PhasingFactor: 13, Model: orbit.ModelKepler,
			},
		}},
		GroundStations: []config.GroundStation{
			{Name: "accra", Location: geom.LatLon{LatDeg: 5.6037, LonDeg: -0.1870}},
			{Name: "johannesburg", Location: geom.LatLon{LatDeg: -26.2041, LonDeg: 28.0473}},
		},
	}
	cfg.Network.MinElevationDeg = 25
	if err := config.Finalize(cfg); err != nil {
		t.Fatal(err)
	}
	c, err := coordinator.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return c
}

// startReplica creates a replica following upstreamURL and runs its follow
// loop until the test ends.
func startReplica(t testing.TB, upstreamURL string, opts Options) *Replica {
	t.Helper()
	opts.Upstream = upstreamURL
	if opts.ReconnectWait == 0 {
		opts.ReconnectWait = 10 * time.Millisecond
	}
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = r.Run(ctx)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return r
}

// body performs a GET against any handler and returns status and bytes.
func body(t *testing.T, h http.Handler, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// waitSynced waits (bounded) for the replica to reach the coordinator's
// generation.
func waitSynced(t *testing.T, r *Replica, gen uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.WaitSynced(ctx, gen); err != nil {
		t.Fatalf("replica never reached generation %d (at %d): %v", gen, r.Generation(), err)
	}
}

// differentialEndpoints are the routes the replica/coordinator
// byte-equality differential runs over — the same set the httpapi cache
// differential uses, plus an error route (proxied verbatim) and the
// versioned aliases.
var differentialEndpoints = []string{
	"/info",
	"/v1/info",
	"/shell/0",
	"/shell/0/100",
	"/gst/accra",
	"/v1/gst/johannesburg",
	"/path/accra/johannesburg",
	"/v1/path/0.0/5.0",
	"/diff?since=0",
	"/v1/diff?since=0",
	"/gst/atlantis", // 404: upstream error documents proxy byte-identically
}

// TestReplicaByteIdenticalDifferential is the tentpole differential: at
// every checked generation, the replica's response on every endpoint must
// be byte-for-byte identical to the coordinator server's — including
// after update ticks have invalidated the replica's document caches.
func TestReplicaByteIdenticalDifferential(t *testing.T) {
	c := testCoordinator(t, 2*time.Second)
	api := httpapi.New(c)
	up := httptest.NewServer(api)
	// Cleanup (not defer): the replica's follow stream must be canceled
	// before up.Close, which waits for outstanding requests.
	t.Cleanup(up.Close)
	r := startReplica(t, up.URL, Options{})

	check := func(tag string) {
		t.Helper()
		waitSynced(t, r, c.Generation())
		for _, ep := range differentialEndpoints {
			wantCode, want := body(t, api, ep)
			gotCode, got := body(t, r, ep)
			if gotCode != wantCode {
				t.Errorf("%s: GET %s: replica status %d, coordinator %d", tag, ep, gotCode, wantCode)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: GET %s: replica bytes differ:\n  coordinator: %s\n  replica:     %s",
					tag, ep, want, got)
			}
		}
	}

	check("t=0")
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	check("t=30")
	if err := c.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	check("t=32")
	if got := r.Stats(); got.FramesApplied == 0 || got.Reconnects != 0 {
		t.Errorf("stats = %+v, want applied frames and no reconnects", got)
	}
}

// TestReplicaResyncPastUpstreamRing connects a replica whose zero cursor
// already fell off the upstream's retention ring: first contact must
// resync to the upstream head (not replay a hole), and following must
// continue normally — with the differential still holding — afterwards.
func TestReplicaResyncPastUpstreamRing(t *testing.T) {
	c := testCoordinator(t, 500*time.Millisecond)
	if err := c.Run(40 * time.Second); err != nil { // 80 updates > 64 retained
		t.Fatal(err)
	}
	api := httpapi.New(c)
	up := httptest.NewServer(api)
	t.Cleanup(up.Close)

	r := startReplica(t, up.URL, Options{})
	waitSynced(t, r, c.Generation())
	if got := r.Stats(); got.Resyncs == 0 {
		t.Fatalf("stats = %+v, want a resync (cursor 0 predates the ring)", got)
	}
	if r.Generation() != c.Generation() || r.TopologyVersion() != c.TopologyVersion() {
		t.Fatalf("replica at %d/%d, coordinator at %d/%d",
			r.Generation(), r.TopologyVersion(), c.Generation(), c.TopologyVersion())
	}

	// Following resumes from the resynced cursor; the differential holds
	// across the forced resync.
	if err := c.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, r, c.Generation())
	for _, ep := range differentialEndpoints {
		wantCode, want := body(t, api, ep)
		gotCode, got := body(t, r, ep)
		if gotCode != wantCode || !bytes.Equal(got, want) {
			t.Errorf("after resync: GET %s: replica (%d) %s\n  coordinator (%d) %s",
				ep, gotCode, got, wantCode, want)
		}
	}
}

// TestReplicaUpstreamRestartMidStream kills the upstream server mid-stream
// and restarts it on the same address with a fresh coordinator whose
// generation counter regressed. The replica must reconnect, accept the
// resync, flush its document caches (monotonic cache versions would pin
// pre-restart documents otherwise) and serve the new upstream's bytes.
func TestReplicaUpstreamRestartMidStream(t *testing.T) {
	cA := testCoordinator(t, 2*time.Second)
	if err := cA.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srvA := &http.Server{Handler: httpapi.New(cA)}
	go srvA.Serve(ln)

	r := startReplica(t, "http://"+addr, Options{})
	waitSynced(t, r, cA.Generation())
	oldGen := r.Generation()
	// Warm the replica's document cache so the restart has something
	// stale to flush.
	if code, _ := body(t, r, "/info"); code != http.StatusOK {
		t.Fatalf("pre-restart /info = %d", code)
	}

	// Hard restart: close the server (dropping the replica's stream) and
	// rebind the same address with a fresh coordinator at generation ~1.
	srvA.Close()
	cB := testCoordinator(t, 2*time.Second)
	api := httpapi.New(cB)
	var ln2 net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srvB := &http.Server{Handler: api}
	go srvB.Serve(ln2)
	defer srvB.Close()
	if cB.Generation() >= oldGen {
		t.Fatalf("fresh coordinator at generation %d, want a regression below %d", cB.Generation(), oldGen)
	}

	// The replica's resumed cursor is in the new upstream's future, so the
	// stream answers resync and the replica re-anchors at the regressed
	// generation.
	deadline := time.Now().Add(30 * time.Second)
	for r.Generation() >= oldGen || !func() bool { return r.Stats().Resyncs > 0 }() {
		if time.Now().After(deadline) {
			t.Fatalf("replica never re-anchored: at %d, stats %+v", r.Generation(), r.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := r.Stats(); got.Reconnects == 0 {
		t.Errorf("stats = %+v, want a reconnect", got)
	}
	if r.Generation() != cB.Generation() {
		t.Fatalf("replica at %d, new upstream at %d", r.Generation(), cB.Generation())
	}
	// The flushed cache must serve the new upstream's document, not the
	// pre-restart one pinned under a higher version.
	wantCode, want := body(t, api, "/info")
	gotCode, got := body(t, r, "/info")
	if gotCode != wantCode || !bytes.Equal(got, want) {
		t.Fatalf("post-restart /info: replica (%d) %s, upstream (%d) %s", gotCode, got, wantCode, want)
	}
	// And following continues on the new upstream.
	if err := cB.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, r, cB.Generation())
}

// TestReplicaGuardedUpstream follows an upstream behind the token-auth
// middleware: the replica must present its bearer token on both the diff
// stream and document fetches.
func TestReplicaGuardedUpstream(t *testing.T) {
	c := testCoordinator(t, 2*time.Second)
	api := httpapi.New(c)
	up := httptest.NewServer(middleware.Chain(api, middleware.TokenAuth("sesame")))
	t.Cleanup(up.Close)

	r := startReplica(t, up.URL, Options{UpstreamAuth: "sesame"})
	waitSynced(t, r, c.Generation())
	wantCode, want := body(t, api, "/info")
	gotCode, got := body(t, r, "/info")
	if gotCode != wantCode || !bytes.Equal(got, want) {
		t.Fatalf("guarded upstream: replica /info (%d) %s, want (%d) %s", gotCode, got, wantCode, want)
	}

	// A replica without the token cannot anchor, and proxies the
	// upstream's 401 rejection verbatim on document reads.
	bad := startReplica(t, up.URL, Options{})
	time.Sleep(100 * time.Millisecond)
	if bad.Generation() != 0 {
		t.Error("unauthenticated replica anchored against a guarded upstream")
	}
	if code, _ := body(t, bad, "/info"); code != http.StatusUnauthorized {
		t.Errorf("unauthenticated replica /info = %d, want the proxied 401", code)
	}
}

// syntheticRecord builds a non-empty diff record distinguishable by
// generation.
func syntheticRecord(gen uint64) constellation.DiffRecord {
	return constellation.DiffRecord{
		T:     float64(gen),
		BaseT: float64(gen) - 1,
		DelayChanged: []constellation.LinkDelta{
			{A: 1, B: 2, OldQ: int32(gen), NewQ: int32(gen) + 1},
		},
	}
}

// offlineReplica builds a replica that never follows anything; tests feed
// it frames directly to probe the ring semantics.
func offlineReplica(t *testing.T, retention int) *Replica {
	t.Helper()
	r, err := New(Options{Upstream: "http://127.0.0.1:1", Retention: retention})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestReplicaFrameRingSemantics drives the replica's own retention ring
// directly and checks it mirrors the coordinator's /diff contract: empty
// success at the head, resync for future cursors and cursors off the
// window, eviction past the retention cap, reconnect-overlap dedup.
func TestReplicaFrameRingSemantics(t *testing.T) {
	r := offlineReplica(t, 4)
	// Pre-anchor: a zero cursor is an empty success (nothing yet), like a
	// coordinator before its first update.
	if frames, ok := r.Frames(0); !ok || len(frames) != 0 {
		t.Fatalf("pre-anchor Frames(0) = %d frames, ok=%v", len(frames), ok)
	}
	for gen := uint64(1); gen <= 10; gen++ {
		rec := syntheticRecord(gen)
		r.applyFrame(gen, &rec)
	}
	if r.Generation() != 10 || r.TopologyVersion() != 10 {
		t.Fatalf("cursor = %d/%d, want 10/10", r.Generation(), r.TopologyVersion())
	}
	// Retention 4 keeps generations 7..10.
	if frames, ok := r.Frames(6); !ok || len(frames) != 4 || frames[0].Generation != 7 {
		t.Errorf("Frames(6) = %d frames ok=%v", len(frames), ok)
	}
	if _, ok := r.Frames(5); ok {
		t.Error("cursor past the retention window did not resync")
	}
	if _, ok := r.Frames(11); ok {
		t.Error("future cursor did not resync")
	}
	if frames, ok := r.Frames(10); !ok || len(frames) != 0 {
		t.Errorf("head cursor = %d frames ok=%v, want empty success", len(frames), ok)
	}
	// Reconnect overlap: replaying an already-applied generation is a
	// no-op, not a ring reset.
	dup := syntheticRecord(9)
	r.applyFrame(9, &dup)
	if frames, ok := r.Frames(6); !ok || len(frames) != 4 {
		t.Errorf("after dup replay: Frames(6) = %d frames ok=%v", len(frames), ok)
	}
	// An empty record advances the generation but not the topology
	// version, like the coordinator.
	empty := constellation.DiffRecord{T: 11, BaseT: 10}
	r.applyFrame(11, &empty)
	if r.Generation() != 11 || r.TopologyVersion() != 10 {
		t.Errorf("after empty frame: %d/%d, want 11/10", r.Generation(), r.TopologyVersion())
	}
	// A resync drops the ring and re-anchors.
	r.resync(100, 90)
	if r.Generation() != 100 || r.TopologyVersion() != 90 {
		t.Errorf("after resync: %d/%d, want 100/90", r.Generation(), r.TopologyVersion())
	}
	if _, ok := r.Frames(99); ok {
		t.Error("pre-resync cursor served from a dropped ring")
	}
	if frames, ok := r.Frames(100); !ok || len(frames) != 0 {
		t.Errorf("head after resync = %d frames ok=%v", len(frames), ok)
	}
	next := syntheticRecord(101)
	r.applyFrame(101, &next)
	if frames, ok := r.Frames(100); !ok || len(frames) != 1 {
		t.Errorf("first frame after resync = %d frames ok=%v", len(frames), ok)
	}
}

// TestReplicaDiffResyncPastOwnRetention subscribes to a replica's own
// /diff SSE re-fan-out with a cursor that fell off the replica's ring:
// the subscriber must get a resync event and then resume on live frames —
// the same contract the coordinator's stream gives the replica itself.
func TestReplicaDiffResyncPastOwnRetention(t *testing.T) {
	r := offlineReplica(t, 4)
	var gen uint64
	for gen = 1; gen <= 10; gen++ {
		rec := syntheticRecord(gen)
		r.applyFrame(gen, &rec)
	}
	srv := httptest.NewServer(r)
	defer srv.Close()

	stop := make(chan struct{})
	feeding := make(chan struct{})
	go func() {
		defer close(feeding)
		for g := gen; ; g++ {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			rec := syntheticRecord(g)
			r.applyFrame(g, &rec)
		}
	}()
	defer func() { close(stop); <-feeding }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/diff?since=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", "1") // generations 1..6 are evicted
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() && len(events) < 2 {
		if v, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			events = append(events, v)
		}
	}
	cancel()
	if len(events) < 2 {
		t.Fatalf("read %d events (%v), scan err %v", len(events), events, sc.Err())
	}
	if events[0] != "resync" {
		t.Errorf("first event = %q, want resync", events[0])
	}
	if events[1] != "diff" {
		t.Errorf("second event = %q, want diff (stream must resume after resync)", events[1])
	}
}

// stallingWriter fakes a subscriber whose connection stalls: writes
// succeed until failAfter is reached, then report a deadline error like a
// net.Conn whose write deadline expired.
type stallingWriter struct {
	h         http.Header
	writes    int
	failAfter int
	deadlines int
}

func (w *stallingWriter) Header() http.Header { return w.h }
func (w *stallingWriter) WriteHeader(int)     {}
func (w *stallingWriter) Flush()              {}
func (w *stallingWriter) SetWriteDeadline(time.Time) error {
	w.deadlines++
	return nil
}
func (w *stallingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.failAfter {
		return 0, os.ErrDeadlineExceeded
	}
	return len(p), nil
}

// TestReplicaEvictsStalledSubscriber checks the replica's own /diff
// stream evicts a subscriber that stops draining, exactly like the
// coordinator's.
func TestReplicaEvictsStalledSubscriber(t *testing.T) {
	r := offlineReplica(t, 64)
	for gen := uint64(1); gen <= 10; gen++ {
		rec := syntheticRecord(gen)
		r.applyFrame(gen, &rec)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/diff?since=0", nil)
	req.Header.Set("Accept", "text/event-stream")
	w := &stallingWriter{h: make(http.Header), failAfter: 2}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.ServeHTTP(w, req)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("replica did not evict the stalled subscriber")
	}
	if w.deadlines == 0 {
		t.Error("no write deadline was set on the replica stream")
	}
}

// TestReplicaChainsOwnSubscribers checks fan-out composition: a
// second-tier replica following a first-tier replica's /diff re-fan-out
// converges to the coordinator's cursor (replicas can follow replicas).
func TestReplicaChainsOwnSubscribers(t *testing.T) {
	c := testCoordinator(t, 2*time.Second)
	api := httpapi.New(c)
	up := httptest.NewServer(api)
	t.Cleanup(up.Close)
	tier1 := startReplica(t, up.URL, Options{})
	tier1srv := httptest.NewServer(tier1)
	// Registered before tier2's replica cleanup, so tier2's stream into
	// tier1srv is canceled before the server's blocking Close.
	t.Cleanup(tier1srv.Close)
	tier2 := startReplica(t, tier1srv.URL, Options{})

	if err := c.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, tier2, c.Generation())
	_, want := body(t, api, "/v1/info")
	_, got := body(t, tier2, "/v1/info")
	if !bytes.Equal(got, want) {
		t.Fatalf("second-tier replica /v1/info differs:\n  coordinator: %s\n  tier2:       %s", want, got)
	}
	if tier2.TopologyVersion() != c.TopologyVersion() {
		t.Errorf("tier2 topology version %d, coordinator %d", tier2.TopologyVersion(), c.TopologyVersion())
	}
}

// TestReplicaBadUpstream pins constructor validation and the unanchored
// error surface.
func TestReplicaBadUpstream(t *testing.T) {
	if _, err := New(Options{Upstream: "not a url"}); err == nil {
		t.Error("bad upstream URL accepted")
	}
	if _, err := New(Options{Upstream: ""}); err == nil {
		t.Error("empty upstream URL accepted")
	}
	r := offlineReplica(t, 0)
	code, b := body(t, r, "/info")
	if code != http.StatusBadGateway {
		t.Errorf("unreachable upstream /info = %d, want 502", code)
	}
	if !strings.Contains(string(b), "error") {
		t.Errorf("502 body is not an error document: %s", b)
	}
	// The long-poll /diff path works unanchored (empty success at head 0).
	code, b = body(t, r, "/v1/diff?since=0")
	if code != http.StatusOK || !strings.Contains(string(b), "\"generation\":0") {
		t.Errorf("unanchored /diff = %d %s", code, b)
	}
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }
