package readpath

import (
	"context"
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"celestial/internal/httpapi"
)

// fanoutSubscriber is one benchmark subscriber's ResponseWriter on a
// replica's binary /diff stream: it never blocks (so no eviction fires),
// counts bytes, and timestamps each received diff frame against the
// generation's publish time.
type fanoutSubscriber struct {
	h         http.Header
	publish   []atomic.Int64 // unix-nano publish time per generation
	finalGen  uint64
	connected *atomic.Int64
	gotFinal  *atomic.Int64
	sawFinal  bool
	bytes     int64
	lags      []time.Duration
}

func (w *fanoutSubscriber) Header() http.Header { return w.h }
func (w *fanoutSubscriber) WriteHeader(int)     { w.connected.Add(1) }
func (w *fanoutSubscriber) Write(p []byte) (int, error) {
	w.bytes += int64(len(p))
	// Each Write is one complete frame: u32 length, u8 type, payload; a
	// diff frame's payload leads with the u64 generation.
	if len(p) >= 13 && httpapi.StreamFrameType(p[4]) == httpapi.StreamFrameDiff {
		gen := binary.LittleEndian.Uint64(p[5:13])
		if int(gen) < len(w.publish) {
			if ts := w.publish[gen].Load(); ts != 0 {
				w.lags = append(w.lags, time.Duration(time.Now().UnixNano()-ts))
			}
		}
		if gen >= w.finalGen && !w.sawFinal {
			w.sawFinal = true
			w.gotFinal.Add(1)
		}
	}
	return len(p), nil
}

// nopWriter discards mixed GET responses.
type nopWriter struct{ h http.Header }

func (w *nopWriter) Header() http.Header         { return w.h }
func (w *nopWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopWriter) WriteHeader(int)             {}

// spinUntil polls cond (with a small sleep) until it holds or the
// deadline passes.
func spinUntil(b *testing.B, what string, timeout time.Duration, cond func() bool) {
	b.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			b.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkReadFanout is the read-path scale gate: 100k concurrent binary
// /diff subscribers spread over four read replicas of one coordinator,
// plus mixed GET traffic, while the coordinator ticks. It reports the
// fan-out lag percentiles (coordinator publish to subscriber receipt),
// the replicas' GET throughput under that load, and the stream bytes per
// subscriber per update — the shared-frame economy. The timed loop
// afterwards measures a single cached replica read; all fleet results
// travel as metrics (the CI protocol runs -benchtime 1x).
func BenchmarkReadFanout(b *testing.B) {
	const (
		numReplicas = 4
		numSubs     = 100_000
		ticks       = 5
		getWorkers  = 8
	)
	c := testCoordinator(b, time.Second)
	api := httpapi.New(c)
	up := httptest.NewServer(api)
	// Cleanup, not defer: replica follow streams must be canceled first
	// or Close blocks on the outstanding requests.
	b.Cleanup(up.Close)

	replicas := make([]*Replica, numReplicas)
	for i := range replicas {
		replicas[i] = startReplica(b, up.URL, Options{})
		// Long keepalive: 100k per-subscriber tickers at the default
		// cadence would measure timer churn, not fan-out.
		replicas[i].Server().SetStreamTiming(time.Minute, 0)
	}
	startGen := c.Generation()
	for _, r := range replicas {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := r.WaitSynced(ctx, startGen); err != nil {
			b.Fatalf("replica never synced: %v", err)
		}
		cancel()
	}

	finalGen := startGen + ticks
	publish := make([]atomic.Int64, finalGen+1)
	var connected, gotFinal atomic.Int64
	subCtx, cancelSubs := context.WithCancel(context.Background())
	defer cancelSubs()
	var wg sync.WaitGroup
	subs := make([]*fanoutSubscriber, numSubs)
	sinceStart := itoa(startGen)
	for i := range subs {
		w := &fanoutSubscriber{
			h: make(http.Header), publish: publish, finalGen: finalGen,
			connected: &connected, gotFinal: &gotFinal,
			lags: make([]time.Duration, 0, ticks),
		}
		subs[i] = w
		r := replicas[i%numReplicas]
		req := httptest.NewRequest(http.MethodGet, "/v1/diff?since="+sinceStart, nil).WithContext(subCtx)
		req.Header.Set("Accept", httpapi.DiffContentType)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.ServeHTTP(w, req)
		}()
	}
	spinUntil(b, "subscribers to connect", 2*time.Minute, func() bool {
		return connected.Load() == numSubs
	})

	// The measured fan-out phase: tick the coordinator while GET workers
	// hammer the replicas, then drain until every subscriber holds the
	// final generation.
	getEndpoints := []string{"/v1/info", "/v1/gst/accra", "/v1/shell/0"}
	var getCount atomic.Int64
	getStop := make(chan struct{})
	var getWG sync.WaitGroup
	start := time.Now()
	for g := 0; g < getWorkers; g++ {
		getWG.Add(1)
		go func(g int) {
			defer getWG.Done()
			w := &nopWriter{h: make(http.Header)}
			for i := 0; ; i++ {
				select {
				case <-getStop:
					return
				default:
				}
				r := replicas[(g+i)%numReplicas]
				r.ServeHTTP(w, httptest.NewRequest(http.MethodGet, getEndpoints[i%len(getEndpoints)], nil))
				getCount.Add(1)
			}
		}(g)
	}
	for i := 0; i < ticks; i++ {
		if err := c.Run(time.Second); err != nil {
			b.Fatal(err)
		}
		publish[c.Generation()].Store(time.Now().UnixNano())
	}
	if c.Generation() != finalGen {
		b.Fatalf("coordinator at generation %d after %d ticks, want %d", c.Generation(), ticks, finalGen)
	}
	spinUntil(b, "fan-out to drain", 2*time.Minute, func() bool {
		return gotFinal.Load() == numSubs
	})
	elapsed := time.Since(start)
	close(getStop)
	getWG.Wait()
	cancelSubs()
	wg.Wait()

	var lags []time.Duration
	var totalBytes int64
	for _, w := range subs {
		lags = append(lags, w.lags...)
		totalBytes += w.bytes
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	pct := func(p float64) float64 {
		if len(lags) == 0 {
			return 0
		}
		i := int(p * float64(len(lags)-1))
		return float64(lags[i]) / float64(time.Millisecond)
	}
	// The timed loop: a cached replica read under no fan-out pressure.
	// (Metrics are reported after it: ResetTimer deletes user metrics.)
	w := &nopWriter{h: make(http.Header)}
	req := httptest.NewRequest(http.MethodGet, "/v1/info", nil)
	replicas[0].ServeHTTP(w, req) // prime the cache fill outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replicas[i%numReplicas].ServeHTTP(w, req)
	}
	b.StopTimer()
	b.ReportMetric(numSubs, "subscribers")
	b.ReportMetric(float64(getCount.Load())/elapsed.Seconds(), "get-req/s")
	b.ReportMetric(pct(0.50), "lag-p50-ms")
	b.ReportMetric(pct(0.99), "lag-p99-ms")
	b.ReportMetric(float64(totalBytes)/numSubs/ticks, "B/sub/update")
}
