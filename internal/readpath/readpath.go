// Package readpath implements read replicas for the information service:
// read-only servers that follow an upstream server's /diff stream and
// serve the identical route table from their own cache, so read capacity
// scales horizontally with zero added coordinator load. Distribution is a
// deployment decision layered outside the coordinator (the RAFDA stance:
// application logic stays put, distribution policy composes around it) —
// the coordinator neither knows nor cares how many replicas fan its
// documents out.
//
// A replica is a diff-following read-through cache, not a reconstruction:
// diff frames carry link and activity deltas, never satellite positions,
// so position-derived documents cannot be rebuilt downstream. Instead the
// replica tracks the upstream's generation and topology version by
// following the binary /diff stream, fetches each document from the
// upstream at most once per version, and serves the upstream's literal
// bytes — which makes replica responses byte-identical to the
// coordinator's by construction, with the diff stream acting as the
// cache-invalidation bus. The replica implements httpapi.Source, so
// httpapi.RegisterRoutes gives it exactly the coordinator's route table,
// caching semantics (documents keyed by generation/topology version) and
// /diff re-fan-out — replicas can follow replicas, forming fan-out trees.
//
// Resync mirrors the coordinator exactly: a replica whose own subscriber
// falls off its retained frame window answers resync, and a replica whose
// cursor falls off the upstream's ring receives the stream's resync frame,
// re-anchors at the carried generation/topology version, drops its frame
// ring and flushes its document caches (the upstream may have restarted
// with regressed counters, which monotonic cache keys cannot express).
package readpath

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"celestial/internal/constellation"
	"celestial/internal/hostlink"
	"celestial/internal/httpapi"
)

// maxDocBytes caps a proxied document read, sharing the hostlink frame
// size cap: a corrupt or hostile upstream must not balloon replica memory.
const maxDocBytes = hostlink.MaxFramePayload

// Options configures a Replica.
type Options struct {
	// Upstream is the base URL of the server to follow, e.g.
	// "http://127.0.0.1:8080" — the coordinator's API server or another
	// replica.
	Upstream string
	// Client is the HTTP client for upstream fetches and the diff
	// stream; nil uses http.DefaultClient. It must not set a global
	// Timeout (the stream is long-lived).
	Client *http.Client
	// UpstreamAuth is a bearer token presented on every upstream request,
	// for upstreams behind the token-auth middleware. Empty sends none.
	UpstreamAuth string
	// Retention is how many generations of frames the replica retains for
	// its own /diff subscribers; 0 uses the coordinator's default ring
	// capacity (64).
	Retention int
	// ReconnectWait is the pause between follow attempts after the
	// stream drops; 0 uses one second.
	ReconnectWait time.Duration
	// Logf logs follow-loop lifecycle events; nil discards them.
	Logf func(format string, args ...any)
}

// Stats counts a replica's follow-loop activity.
type Stats struct {
	// FramesApplied is the number of diff frames applied from the
	// upstream stream.
	FramesApplied uint64
	// Resyncs counts resync frames received (cursor fell off the
	// upstream's retention ring, or first contact past it).
	Resyncs uint64
	// Reconnects counts stream re-establishments after a drop.
	Reconnects uint64
}

// Replica is one read replica: an httpapi.Source fed by the upstream's
// binary /diff stream, plus the server serving its route table.
type Replica struct {
	upstream      string
	client        *http.Client
	upstreamAuth  string
	retention     int
	reconnectWait time.Duration
	logf          func(string, ...any)
	srv           *httpapi.Server

	mu sync.Mutex
	// anchored reports that the replica has a valid cursor: either a
	// replayed-from-zero stream or a resync frame established it.
	anchored bool
	// gen and topoVer mirror the upstream's generation and topology
	// version as of the last applied frame.
	gen     uint64
	topoVer uint64
	// frames is the replica's own retention ring for /diff re-fan-out:
	// the shared per-generation frames, rebuilt from the wire records by
	// the same builder the coordinator uses.
	frames map[uint64]*httpapi.Frame
	oldest uint64
	// notify is closed (and replaced) on every cursor change, waking the
	// replica's own long-polls and streams.
	notify chan struct{}
	stats  Stats
}

// New creates a replica for an upstream. The replica serves immediately
// (documents are read through to the upstream) but its /diff re-fan-out
// only advances once Run is following the stream.
func New(opts Options) (*Replica, error) {
	u, err := url.Parse(opts.Upstream)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("readpath: bad upstream URL %q", opts.Upstream)
	}
	r := &Replica{
		upstream:      strings.TrimSuffix(opts.Upstream, "/"),
		client:        opts.Client,
		upstreamAuth:  opts.UpstreamAuth,
		retention:     opts.Retention,
		reconnectWait: opts.ReconnectWait,
		logf:          opts.Logf,
		frames:        make(map[uint64]*httpapi.Frame),
		oldest:        1,
		notify:        make(chan struct{}),
	}
	if r.client == nil {
		r.client = http.DefaultClient
	}
	if r.retention <= 0 {
		r.retention = 64
	}
	if r.reconnectWait <= 0 {
		r.reconnectWait = time.Second
	}
	if r.logf == nil {
		r.logf = func(string, ...any) {}
	}
	mux := http.NewServeMux()
	r.srv = httpapi.RegisterRoutes(mux, r)
	return r, nil
}

// Server returns the replica's API server (for stream timing and caching
// knobs); ServeHTTP serves through it.
func (r *Replica) Server() *httpapi.Server { return r.srv }

// ServeHTTP implements http.Handler with the replica's route table.
func (r *Replica) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.srv.ServeHTTP(w, req)
}

// Stats returns a snapshot of the follow-loop counters.
func (r *Replica) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Generation implements httpapi.Source: the upstream generation of the
// last applied frame.
func (r *Replica) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// TopologyVersion implements httpapi.Source.
func (r *Replica) TopologyVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.topoVer
}

// UpdateChan implements httpapi.Source: closed on the next applied frame
// or resync.
func (r *Replica) UpdateChan() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notify
}

// bump wakes everything blocked on UpdateChan. Callers hold mu.
func (r *Replica) bump() {
	close(r.notify)
	r.notify = make(chan struct{})
}

// errBody builds the JSON error envelope for replica-side failures
// (upstream unreachable); upstream-side errors are proxied verbatim.
func errBody(err error) []byte {
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{"readpath: " + err.Error()})
	return append(b, '\n')
}

// fetch reads one document through from the upstream, returning its
// literal body bytes and status — the byte-identity guarantee. A
// transport failure maps to 502.
func (r *Replica) fetch(path string) ([]byte, int) {
	req, err := http.NewRequest(http.MethodGet, r.upstream+path, nil)
	if err != nil {
		return errBody(err), http.StatusBadGateway
	}
	if r.upstreamAuth != "" {
		req.Header.Set("Authorization", "Bearer "+r.upstreamAuth)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return errBody(err), http.StatusBadGateway
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxDocBytes+1))
	if err != nil {
		return errBody(err), http.StatusBadGateway
	}
	if len(body) > maxDocBytes {
		return errBody(fmt.Errorf("document exceeds %d bytes", maxDocBytes)), http.StatusBadGateway
	}
	return body, resp.StatusCode
}

// The document builders proxy the upstream's canonical /v1 routes. The
// httpapi server in front of them caches 200s keyed by the replica's
// generation/topology version, so a document is fetched at most once per
// version per replica — the diff stream is the invalidation bus.

func (r *Replica) InfoDoc() ([]byte, int) { return r.fetch("/v1/info") }

func (r *Replica) ShellDoc(shell string) ([]byte, int) {
	return r.fetch("/v1/shell/" + url.PathEscape(shell))
}

func (r *Replica) SatDoc(shell, sat string) ([]byte, int) {
	return r.fetch("/v1/shell/" + url.PathEscape(shell) + "/" + url.PathEscape(sat))
}

func (r *Replica) GSTDoc(name string) ([]byte, int) {
	return r.fetch("/v1/gst/" + url.PathEscape(name))
}

func (r *Replica) PathDoc(source, target string) ([]byte, int) {
	return r.fetch("/v1/path/" + url.PathEscape(source) + "/" + url.PathEscape(target))
}

// Frames implements httpapi.Source over the replica's own retained ring,
// with the coordinator's exact semantics: ok=false for a cursor in the
// future or fallen off the window, empty success at the head.
func (r *Replica) Frames(since uint64) ([]*httpapi.Frame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	head := r.gen
	switch {
	case since > head:
		return nil, false
	case since == head:
		return nil, true
	case since+1 < r.oldest:
		return nil, false
	}
	out := make([]*httpapi.Frame, 0, head-since)
	for g := since + 1; g <= head; g++ {
		f, ok := r.frames[g]
		if !ok {
			return nil, false
		}
		out = append(out, f)
	}
	return out, true
}

// Run follows the upstream's binary /diff stream until ctx is canceled,
// reconnecting (with the configured wait) whenever the stream drops —
// an upstream restart mid-stream is just a reconnect whose resumed
// cursor the new upstream answers, possibly with a resync frame.
func (r *Replica) Run(ctx context.Context) error {
	for {
		err := r.followOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		r.logf("readpath: upstream stream ended: %v (reconnecting in %v)", err, r.reconnectWait)
		r.mu.Lock()
		r.stats.Reconnects++
		r.mu.Unlock()
		select {
		case <-time.After(r.reconnectWait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// followOnce opens one stream from the current cursor and applies frames
// until it breaks.
func (r *Replica) followOnce(ctx context.Context) error {
	since := r.Generation()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.upstream+"/v1/diff?since="+strconv.FormatUint(since, 10), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", httpapi.DiffContentType)
	if r.upstreamAuth != "" {
		req.Header.Set("Authorization", "Bearer "+r.upstreamAuth)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("upstream /v1/diff: %s (%s)", resp.Status, strings.TrimSpace(string(body)))
	}
	if ct := resp.Header.Get("Content-Type"); ct != httpapi.DiffContentType {
		return fmt.Errorf("upstream /v1/diff served %q, want %q (upstream too old for the binary stream?)",
			ct, httpapi.DiffContentType)
	}
	r.logf("readpath: following %s from generation %d", r.upstream, since)
	var buf []byte
	for {
		var f httpapi.StreamFrame
		f, buf, err = httpapi.ReadStreamFrame(resp.Body, buf)
		if err != nil {
			return err
		}
		switch f.Type {
		case httpapi.StreamFrameDiff:
			r.applyFrame(f.Generation, &f.Record)
		case httpapi.StreamFrameResync:
			r.resync(f.Generation, f.TopologyVersion)
		case httpapi.StreamFrameKeepalive:
			// Nothing to apply; the read itself proves liveness.
		}
	}
}

// applyFrame ingests one generation: it rebuilds the shared frame (same
// builder as the coordinator's frame cache, so the replica's SSE/JSON
// re-fan-out is byte-identical), advances the cursor, and evicts beyond
// the retention window.
func (r *Replica) applyFrame(gen uint64, rec *constellation.DiffRecord) {
	frame := httpapi.BuildFrame(gen, rec)
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case !r.anchored:
		// First contact on a replayed-from-zero stream: the ring starts
		// at this generation.
		r.anchored = true
		r.frames[gen] = frame
		r.oldest = gen
	case gen <= r.gen:
		// Reconnect overlap: the upstream replayed a generation we
		// already hold.
		return
	case gen != r.gen+1:
		// A gap without a resync frame (should not happen): restart the
		// ring at gen so our own subscribers resync rather than seeing a
		// hole.
		clear(r.frames)
		r.frames[gen] = frame
		r.oldest = gen
	default:
		if len(r.frames) == 0 {
			r.oldest = gen
		}
		r.frames[gen] = frame
	}
	r.gen = gen
	if !frame.Doc.Empty {
		r.topoVer = gen
	}
	for r.gen-r.oldest+1 > uint64(r.retention) {
		delete(r.frames, r.oldest)
		r.oldest++
	}
	r.stats.FramesApplied++
	r.bump()
}

// resync re-anchors the replica at the upstream's head: the cursor fell
// off the upstream's retention ring (or this is first contact past it).
// The frame ring restarts empty and the document caches are flushed —
// after an upstream restart the generation counter may have regressed,
// and monotonic cache keys would otherwise pin stale documents forever.
func (r *Replica) resync(gen, topoVer uint64) {
	r.mu.Lock()
	r.anchored = true
	r.gen = gen
	r.topoVer = topoVer
	clear(r.frames)
	r.oldest = gen + 1
	r.stats.Resyncs++
	r.bump()
	r.mu.Unlock()
	r.srv.ResetCaches()
	r.logf("readpath: resynced to generation %d (topology %d)", gen, topoVer)
}

// WaitSynced blocks until the replica's cursor reaches gen (and the
// replica is anchored), or ctx ends.
func (r *Replica) WaitSynced(ctx context.Context, gen uint64) error {
	for {
		r.mu.Lock()
		cur, anchored, ch := r.gen, r.anchored, r.notify
		r.mu.Unlock()
		if anchored && cur >= gen {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
