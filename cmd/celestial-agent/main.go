// Command celestial-agent is the standalone host agent for distributed
// runs: it dials the coordinator's -agents-listen socket, claims one
// shard, follows the versioned frame stream (snapshots, diffs,
// heartbeats) into a local replica, and acks every applied generation
// with its digest chain so the coordinator can prove byte-exact
// convergence. Killed agents can simply be restarted: the agent redials
// with its replica cursor and the coordinator resyncs it from the diff
// retention ring, or with a full snapshot when the ring has moved on.
//
// Usage:
//
//	celestial-agent -coordinator host:port -agent N [-heartbeat 15s]
//	celestial-agent ... -apply [-token T] [-tls-ca ca.pem | -tls-insecure]
//	celestial-agent ... -http :8081
//
// With -apply the agent requests authoritative remote apply: the
// coordinator sends a Propose frame per generation, the agent executes
// it through the same apply engine the coordinator's loopback path uses
// (internal/applyengine, seeded from the Welcome frame), and answers
// with the result digest so the coordinator can verify the remote apply
// before committing the generation. -token presents a bearer token in
// the Hello frame; -tls-ca (or -tls-insecure, for tests) dials the
// coordinator over TLS. -http serves the /v1 information API from the
// agent's replica state through the same route table the coordinator
// uses — machines on this host can read generation, activity counts and
// the shard's diff stream without a round-trip to the coordinator.
//
// The process exits 0 when the coordinator ends the run with a clean
// Bye, and non-zero on a refused handshake (bad shard id, version skew,
// bad token).
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"celestial/internal/applyengine"
	"celestial/internal/hostlink"
	"celestial/internal/httpapi"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator agent-listener address (host:port)")
	agent := flag.Int("agent", -1, "shard id this agent owns")
	heartbeat := flag.Duration("heartbeat", hostlink.DefaultHeartbeat, "heartbeat interval; must match the coordinator's")
	reconnect := flag.Duration("reconnect", 500*time.Millisecond, "wait between redial attempts")
	crashAfter := flag.Uint64("crash-after-gens", 0, "exit hard (status 3, no Bye) once the replica has applied this generation — agent-loss testing; a restarted agent resyncs and rejoins")
	apply := flag.Bool("apply", false, "request authoritative remote apply: answer the coordinator's Propose frames through the shared apply engine")
	token := flag.String("token", "", "bearer token presented in the Hello frame (required when the coordinator runs with -agents-token)")
	tlsCA := flag.String("tls-ca", "", "dial the coordinator over TLS, trusting the PEM roots in this file")
	tlsInsecure := flag.Bool("tls-insecure", false, "dial the coordinator over TLS without verifying its certificate (tests only)")
	httpAddr := flag.String("http", "", "TCP address to serve the /v1 information API from the replica on (e.g. :8081)")
	flag.Parse()

	if *coordinator == "" || *agent < 0 {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	a := &hostlink.Agent{
		ID:            *agent,
		Addr:          *coordinator,
		Replica:       hostlink.NewReplica(),
		Heartbeat:     *heartbeat,
		ReconnectWait: *reconnect,
		Token:         *token,
		Logf:          log.Printf,
	}
	if *apply {
		// The engine construction is the same one the coordinator's
		// loopback path uses — only the Backend differs — so both
		// executions of a generation produce the same commit digest.
		a.Apply = true
		a.NewApplier = func(shard int, seed int64) hostlink.ResultApplier {
			return applyengine.New(applyengine.Config{
				Shard:   shard,
				Backend: &applyengine.ReplicaBackend{},
				Seed:    seed,
			})
		}
	}
	switch {
	case *tlsCA != "":
		pem, err := os.ReadFile(*tlsCA)
		if err != nil {
			log.Fatalf("celestial-agent %d: -tls-ca: %v", *agent, err)
		}
		roots := x509.NewCertPool()
		if !roots.AppendCertsFromPEM(pem) {
			log.Fatalf("celestial-agent %d: -tls-ca: no certificates in %s", *agent, *tlsCA)
		}
		host, _, err := net.SplitHostPort(*coordinator)
		if err != nil {
			host = *coordinator
		}
		a.TLS = &tls.Config{RootCAs: roots, ServerName: host}
	case *tlsInsecure:
		a.TLS = &tls.Config{InsecureSkipVerify: true}
	}

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("celestial-agent %d: http listener: %v", *agent, err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		httpapi.RegisterRoutes(mux, httpapi.NewReplicaSource(*agent, a.Replica))
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				log.Printf("celestial-agent %d: http server: %v", *agent, err)
			}
		}()
		log.Printf("celestial-agent %d: serving replica info API on http://%s/v1/info", *agent, ln.Addr())
	}

	if *crashAfter > 0 {
		// The kill is keyed on applied generations, not wall clock, so the
		// CI kill/rejoin leg lands at the same run point every time.
		go func() {
			for {
				if gen, _ := a.Replica.Cursor(); gen >= *crashAfter {
					log.Printf("celestial-agent %d: crashing at generation %d as requested", *agent, gen)
					os.Exit(3)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	if err := a.Run(ctx); err != nil {
		if ctx.Err() != nil {
			log.Printf("celestial-agent %d: interrupted", *agent)
			return
		}
		log.Fatalf("celestial-agent %d: %v", *agent, err)
	}
	active, inactive, links, frames, snapshots := a.Replica.Counts()
	gen, digest := a.Replica.Cursor()
	st := a.Stats()
	log.Printf("celestial-agent %d: run complete at generation %d (digest %016x): %d active, %d inactive, %d links via %d frames + %d snapshots; %d applies (%d errors), %d commits (%d mismatches), %d reassigns",
		*agent, gen, digest, active, inactive, links, frames, snapshots,
		st.Applies, st.ApplyErrors, st.Commits, st.CommitMismatches, st.Reassigns)
}
