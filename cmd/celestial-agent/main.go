// Command celestial-agent is the standalone host agent for distributed
// runs: it dials the coordinator's -agents-listen socket, claims one
// shard, follows the versioned frame stream (snapshots, diffs,
// heartbeats) into a local replica, and acks every applied generation
// with its digest chain so the coordinator can prove byte-exact
// convergence. Killed agents can simply be restarted: the agent redials
// with its replica cursor and the coordinator resyncs it from the diff
// retention ring, or with a full snapshot when the ring has moved on.
//
// Usage:
//
//	celestial-agent -coordinator host:port -agent N [-heartbeat 15s]
//
// The process exits 0 when the coordinator ends the run with a clean
// Bye, and non-zero on a refused handshake (bad shard id, version skew).
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"celestial/internal/hostlink"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator agent-listener address (host:port)")
	agent := flag.Int("agent", -1, "shard id this agent owns")
	heartbeat := flag.Duration("heartbeat", hostlink.DefaultHeartbeat, "heartbeat interval; must match the coordinator's")
	reconnect := flag.Duration("reconnect", 500*time.Millisecond, "wait between redial attempts")
	crashAfter := flag.Uint64("crash-after-gens", 0, "exit hard (status 3, no Bye) once the replica has applied this generation — agent-loss testing; a restarted agent resyncs and rejoins")
	flag.Parse()

	if *coordinator == "" || *agent < 0 {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	a := &hostlink.Agent{
		ID:            *agent,
		Addr:          *coordinator,
		Replica:       hostlink.NewReplica(),
		Heartbeat:     *heartbeat,
		ReconnectWait: *reconnect,
		Logf:          log.Printf,
	}
	if *crashAfter > 0 {
		// The kill is keyed on applied generations, not wall clock, so the
		// CI kill/rejoin leg lands at the same run point every time.
		go func() {
			for {
				if gen, _ := a.Replica.Cursor(); gen >= *crashAfter {
					log.Printf("celestial-agent %d: crashing at generation %d as requested", *agent, gen)
					os.Exit(3)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	if err := a.Run(ctx); err != nil {
		if ctx.Err() != nil {
			log.Printf("celestial-agent %d: interrupted", *agent)
			return
		}
		log.Fatalf("celestial-agent %d: %v", *agent, err)
	}
	active, inactive, links, frames, snapshots := a.Replica.Counts()
	gen, digest := a.Replica.Cursor()
	log.Printf("celestial-agent %d: run complete at generation %d (digest %016x): %d active, %d inactive, %d links via %d frames + %d snapshots",
		*agent, gen, digest, active, inactive, links, frames, snapshots)
}
