package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: celestial
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTickUpdate/steady-diff-8         	      40	   3583675 ns/op	         0.25 carried-paths/op	         0.5800 empty-tick-frac	  245413 B/op	     992 allocs/op
BenchmarkTickUpdate/from-scratch-8        	      40	  17597944 ns/op	 7256294 B/op	   20435 allocs/op
PASS
ok  	celestial	0.992s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkTickUpdate/steady-diff" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", r.Name)
	}
	if r.Package != "celestial" || r.Iterations != 40 {
		t.Errorf("result = %+v", r)
	}
	if r.NsPerOp != 3583675 || r.BytesPerOp != 245413 || r.AllocsPer != 992 {
		t.Errorf("std metrics = %+v", r)
	}
	if r.Metrics["empty-tick-frac"] != 0.58 || r.Metrics["carried-paths/op"] != 0.25 {
		t.Errorf("custom metrics = %+v", r.Metrics)
	}
	if rep.Results[1].Metrics != nil {
		t.Errorf("unexpected custom metrics: %+v", rep.Results[1].Metrics)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := Parse(strings.NewReader("hello\nBenchmarkBroken\nBenchmarkAlso xx\nok done\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("results = %+v", rep.Results)
	}
}
