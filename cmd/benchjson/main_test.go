package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: celestial
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTickUpdate/steady-diff-8         	      40	   3583675 ns/op	         0.25 carried-paths/op	         0.5800 empty-tick-frac	  245413 B/op	     992 allocs/op
BenchmarkTickUpdate/from-scratch-8        	      40	  17597944 ns/op	 7256294 B/op	   20435 allocs/op
PASS
ok  	celestial	0.992s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkTickUpdate/steady-diff" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", r.Name)
	}
	if r.Package != "celestial" || r.Iterations != 40 {
		t.Errorf("result = %+v", r)
	}
	if r.NsPerOp != 3583675 || r.BytesPerOp != 245413 || r.AllocsPer != 992 {
		t.Errorf("std metrics = %+v", r)
	}
	if r.Metrics["empty-tick-frac"] != 0.58 || r.Metrics["carried-paths/op"] != 0.25 {
		t.Errorf("custom metrics = %+v", r.Metrics)
	}
	if rep.Results[1].Metrics != nil {
		t.Errorf("unexpected custom metrics: %+v", rep.Results[1].Metrics)
	}
}

func TestCompare(t *testing.T) {
	old := &Report{Results: []Result{
		{Name: "BenchmarkA", Package: "p", NsPerOp: 100, AllocsPer: 10},
		{Name: "BenchmarkGone", Package: "p", NsPerOp: 50},
	}}
	new_ := &Report{Results: []Result{
		{Name: "BenchmarkA", Package: "p", NsPerOp: 50, AllocsPer: 8},
		{Name: "BenchmarkNew", Package: "p", NsPerOp: 7},
	}}
	rows := Compare(old, new_)
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if r := rows[0]; r.Name != "BenchmarkA" || !r.InOld || !r.InNew || r.OldNs != 100 || r.NewNs != 50 {
		t.Errorf("matched row = %+v", r)
	}
	if r := rows[1]; r.Name != "BenchmarkNew" || r.InOld || !r.InNew {
		t.Errorf("new-only row = %+v", r)
	}
	if r := rows[2]; r.Name != "BenchmarkGone" || !r.InOld || r.InNew {
		t.Errorf("old-only row = %+v", r)
	}

	var buf strings.Builder
	WriteComparison(&buf, rows)
	out := buf.String()
	for _, want := range []string{"-50.0%", "(new)", "(gone)", "p.BenchmarkA"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
}

// TestCompareDistinguishesPackages guards the (package, name) match key:
// same-named benchmarks in different packages must not be conflated.
func TestCompareDistinguishesPackages(t *testing.T) {
	old := &Report{Results: []Result{{Name: "BenchmarkX", Package: "p1", NsPerOp: 1}}}
	new_ := &Report{Results: []Result{{Name: "BenchmarkX", Package: "p2", NsPerOp: 2}}}
	rows := Compare(old, new_)
	if len(rows) != 2 || rows[0].InOld || rows[1].InNew {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	// Non-benchmark noise and lone benchmark names (the runner prints the
	// name alone when output interleaves with logs) are skipped...
	rep, err := Parse(strings.NewReader("hello\nBenchmarkBroken\nok done\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("results = %+v", rep.Results)
	}
	// ...but a line shaped like a result with a corrupt iteration count is
	// an error, not a silent skip.
	if _, err := Parse(strings.NewReader("BenchmarkAlso xx 12 ns/op\n")); err == nil {
		t.Fatal("malformed benchmark line accepted")
	}
}

func TestLoadReportRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := map[string]string{
		"bench text, not JSON": "BenchmarkX-8 10 5 ns/op\nPASS\n",
		"wrong JSON shape":     `["not", "a", "report"]`,
		"empty report":         `{}`,
		"no results":           `{"goos": "linux", "results": []}`,
	}
	for name, content := range cases {
		if _, err := loadReport(write("bad.json", content)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := write("good.json", `{"results": [{"name": "BenchmarkA", "iterations": 1}]}`)
	if _, err := loadReport(good); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
	if _, err := loadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAllocRegressions(t *testing.T) {
	old := &Report{Results: []Result{
		{Name: "BenchmarkSteady", Package: "p", AllocsPer: 100},
		{Name: "BenchmarkWorse", Package: "p", AllocsPer: 100},
		{Name: "BenchmarkZero", Package: "p", AllocsPer: 0},
		{Name: "BenchmarkGone", Package: "p", AllocsPer: 5},
	}}
	new_ := &Report{Results: []Result{
		{Name: "BenchmarkSteady", Package: "p", AllocsPer: 199},
		{Name: "BenchmarkWorse", Package: "p", AllocsPer: 201},
		{Name: "BenchmarkZero", Package: "p", AllocsPer: 1},
		{Name: "BenchmarkNew", Package: "p", AllocsPer: 1000},
	}}
	rows := Compare(old, new_)
	if got := AllocRegressions(rows, 0); got != nil {
		t.Errorf("disabled gate flagged %v", got)
	}
	got := AllocRegressions(rows, 2)
	if len(got) != 2 {
		t.Fatalf("regressions = %v, want 2 (Worse and Zero)", got)
	}
	for _, msg := range got {
		if !strings.Contains(msg, "BenchmarkWorse") && !strings.Contains(msg, "BenchmarkZero") {
			t.Errorf("unexpected regression: %s", msg)
		}
	}
}

func TestMissingRequired(t *testing.T) {
	rep := &Report{Results: []Result{
		{Name: "BenchmarkAPI/info-cached", Package: "p"},
		{Name: "BenchmarkTickUpdate/steady-diff", Package: "p"},
	}}
	if got := MissingRequired(rep, ""); got != nil {
		t.Errorf("empty require flagged %v", got)
	}
	if got := MissingRequired(rep, "BenchmarkAPI, BenchmarkTickUpdate"); got != nil {
		t.Errorf("satisfied require flagged %v", got)
	}
	got := MissingRequired(rep, "BenchmarkAPI,BenchmarkGone")
	if len(got) != 1 || !strings.Contains(got[0], "BenchmarkGone") {
		t.Errorf("missing prefix not flagged: %v", got)
	}
}
