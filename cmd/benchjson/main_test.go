package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: celestial
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTickUpdate/steady-diff-8         	      40	   3583675 ns/op	         0.25 carried-paths/op	         0.5800 empty-tick-frac	  245413 B/op	     992 allocs/op
BenchmarkTickUpdate/from-scratch-8        	      40	  17597944 ns/op	 7256294 B/op	   20435 allocs/op
PASS
ok  	celestial	0.992s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkTickUpdate/steady-diff" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", r.Name)
	}
	if r.Package != "celestial" || r.Iterations != 40 {
		t.Errorf("result = %+v", r)
	}
	if r.NsPerOp != 3583675 || r.BytesPerOp != 245413 || r.AllocsPer != 992 {
		t.Errorf("std metrics = %+v", r)
	}
	if r.Metrics["empty-tick-frac"] != 0.58 || r.Metrics["carried-paths/op"] != 0.25 {
		t.Errorf("custom metrics = %+v", r.Metrics)
	}
	if rep.Results[1].Metrics != nil {
		t.Errorf("unexpected custom metrics: %+v", rep.Results[1].Metrics)
	}
}

func TestCompare(t *testing.T) {
	old := &Report{Results: []Result{
		{Name: "BenchmarkA", Package: "p", NsPerOp: 100, AllocsPer: 10},
		{Name: "BenchmarkGone", Package: "p", NsPerOp: 50},
	}}
	new_ := &Report{Results: []Result{
		{Name: "BenchmarkA", Package: "p", NsPerOp: 50, AllocsPer: 8},
		{Name: "BenchmarkNew", Package: "p", NsPerOp: 7},
	}}
	rows := Compare(old, new_)
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if r := rows[0]; r.Name != "BenchmarkA" || !r.InOld || !r.InNew || r.OldNs != 100 || r.NewNs != 50 {
		t.Errorf("matched row = %+v", r)
	}
	if r := rows[1]; r.Name != "BenchmarkNew" || r.InOld || !r.InNew {
		t.Errorf("new-only row = %+v", r)
	}
	if r := rows[2]; r.Name != "BenchmarkGone" || !r.InOld || r.InNew {
		t.Errorf("old-only row = %+v", r)
	}

	var buf strings.Builder
	WriteComparison(&buf, old, new_)
	out := buf.String()
	for _, want := range []string{"-50.0%", "(new)", "(gone)", "p.BenchmarkA"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
}

// TestCompareDistinguishesPackages guards the (package, name) match key:
// same-named benchmarks in different packages must not be conflated.
func TestCompareDistinguishesPackages(t *testing.T) {
	old := &Report{Results: []Result{{Name: "BenchmarkX", Package: "p1", NsPerOp: 1}}}
	new_ := &Report{Results: []Result{{Name: "BenchmarkX", Package: "p2", NsPerOp: 2}}}
	rows := Compare(old, new_)
	if len(rows) != 2 || rows[0].InOld || rows[1].InNew {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := Parse(strings.NewReader("hello\nBenchmarkBroken\nBenchmarkAlso xx\nok done\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("results = %+v", rep.Results)
	}
}
