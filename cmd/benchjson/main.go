// Command benchjson converts `go test -bench` text output into a JSON
// report, so CI can archive one machine-readable benchmark artifact per
// commit and the performance trajectory stays comparable across PRs.
//
// Usage (mirroring CI's bench smoke / bench json / bench compare steps):
//
//	go test -run 'XXX' -bench . -benchtime 1x ./... | tee bench.txt
//	benchjson -o BENCH_<sha>.json < bench.txt
//	benchjson -compare [-max-alloc-ratio 2] [-require Prefix,...] BENCH_baseline.json BENCH_<sha>.json
//
// The compare mode prints a per-benchmark delta table (ns/op, allocs/op)
// between two archived reports — typically the checked-in
// BENCH_baseline.json and a fresh run — flagging results that exist on
// only one side. Malformed input fails loudly: a file that is not a
// benchjson report (bad JSON, or no benchmark results at all) exits
// non-zero instead of silently comparing nothing. The ns/op column is
// informational, since CI machines differ; with -max-alloc-ratio N the
// command additionally exits non-zero when any benchmark's allocs/op grew
// by more than that factor — allocation counts are deterministic even on
// shared runners, so this is a reliable regression gate.
//
// With -require, the compare additionally fails when the new report holds
// no benchmark whose name starts with one of the given comma-separated
// prefixes — guarding against a benchmark silently dropping out of the
// suite (build tag slip, renamed function) while the comparison "passes"
// by matching nothing.
//
// Lines that are not benchmark results (pkg headers, PASS/ok trailers) are
// recorded as context where useful and otherwise ignored, but a line that
// looks like a benchmark result yet fails to parse is an error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsPer  float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "empty-tick-frac").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the archived document.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two archived reports: benchjson -compare old.json new.json")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 0,
		"with -compare, fail when any benchmark's allocs/op grew by more than this factor (0 disables)")
	require := flag.String("require", "",
		"with -compare, comma-separated name prefixes the new report must contain at least one result for")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two report files")
			os.Exit(2)
		}
		old, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		new_, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rows := Compare(old, new_)
		WriteComparison(os.Stdout, rows)
		failed := false
		for _, msg := range AllocRegressions(rows, *maxAllocRatio) {
			fmt.Fprintln(os.Stderr, "benchjson:", msg)
			failed = true
		}
		for _, msg := range MissingRequired(new_, *require) {
			fmt.Fprintln(os.Stderr, "benchjson:", msg)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadReport reads an archived JSON report from disk. A file that decodes
// but contains no benchmark results is rejected: comparing against it
// would silently report nothing.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results (not a benchjson report?)", path)
	}
	return rep, nil
}

// AllocRegressions returns one message per benchmark present in both
// reports whose allocs/op grew by more than maxRatio (including any growth
// from zero allocations). A maxRatio of 0 disables the check.
func AllocRegressions(rows []CompareRow, maxRatio float64) []string {
	if maxRatio <= 0 {
		return nil
	}
	var out []string
	for _, row := range rows {
		if !row.InOld || !row.InNew {
			continue
		}
		switch {
		case row.OldAllocs == 0 && row.NewAllocs > 0:
			out = append(out, fmt.Sprintf("%s: allocs/op regressed from 0 to %.0f", rowLabel(row), row.NewAllocs))
		case row.OldAllocs > 0 && row.NewAllocs > row.OldAllocs*maxRatio:
			out = append(out, fmt.Sprintf("%s: allocs/op regressed %.0f -> %.0f (more than %.1fx)",
				rowLabel(row), row.OldAllocs, row.NewAllocs, maxRatio))
		}
	}
	return out
}

// MissingRequired returns one message per comma-separated name prefix in
// require that matches no result in the report. An empty require disables
// the check.
func MissingRequired(rep *Report, require string) []string {
	var out []string
	for _, prefix := range strings.Split(require, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix == "" {
			continue
		}
		found := false
		for _, r := range rep.Results {
			if strings.HasPrefix(r.Name, prefix) {
				found = true
				break
			}
		}
		if !found {
			out = append(out, fmt.Sprintf("required benchmark %q missing from the new report", prefix))
		}
	}
	return out
}

// CompareRow is one benchmark's old-vs-new delta. A missing side is
// marked by a zero value plus the InOld/InNew flags.
type CompareRow struct {
	Name         string
	Package      string
	OldNs, NewNs float64
	OldAllocs    float64
	NewAllocs    float64
	InOld, InNew bool
}

// Compare matches the two reports' results by (package, name) and returns
// one row per benchmark, in the new report's order with old-only rows
// appended in the old report's order.
func Compare(old, new_ *Report) []CompareRow {
	key := func(r Result) string { return r.Package + "\x00" + r.Name }
	oldBy := map[string]Result{}
	for _, r := range old.Results {
		oldBy[key(r)] = r
	}
	seen := map[string]bool{}
	var rows []CompareRow
	for _, r := range new_.Results {
		row := CompareRow{Name: r.Name, Package: r.Package, NewNs: r.NsPerOp, NewAllocs: r.AllocsPer, InNew: true}
		if o, ok := oldBy[key(r)]; ok {
			row.InOld = true
			row.OldNs = o.NsPerOp
			row.OldAllocs = o.AllocsPer
		}
		seen[key(r)] = true
		rows = append(rows, row)
	}
	for _, r := range old.Results {
		if !seen[key(r)] {
			rows = append(rows, CompareRow{Name: r.Name, Package: r.Package, OldNs: r.NsPerOp, OldAllocs: r.AllocsPer, InOld: true})
		}
	}
	return rows
}

// rowLabel renders a row's display name: same-named benchmarks compare per
// package, so the package qualifies the name whenever one is recorded.
func rowLabel(row CompareRow) string {
	if row.Package == "" {
		return row.Name
	}
	return row.Package + "." + row.Name
}

// WriteComparison renders the delta table for rows from Compare.
func WriteComparison(w io.Writer, rows []CompareRow) {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs")
	for _, row := range rows {
		switch {
		case !row.InOld:
			fmt.Fprintf(tw, "%s\t-\t%.0f\t(new)\t-\t%.0f\n", rowLabel(row), row.NewNs, row.NewAllocs)
		case !row.InNew:
			fmt.Fprintf(tw, "%s\t%.0f\t-\t(gone)\t%.0f\t-\n", rowLabel(row), row.OldNs, row.OldAllocs)
		default:
			delta := "n/a"
			if row.OldNs > 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(row.NewNs-row.OldNs)/row.OldNs)
			}
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%.0f\t%.0f\n",
				rowLabel(row), row.OldNs, row.NewNs, delta, row.OldAllocs, row.NewAllocs)
		}
	}
	tw.Flush()
}

// Parse reads `go test -bench` output into a Report.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseResult(line, pkg)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	return rep, sc.Err()
}

// parseResult parses one "BenchmarkX-8  N  v1 unit1  v2 unit2 ..." line. A
// lone benchmark name (the runner prints it before the result when output
// interleaves) is skipped; a line that has result fields but a malformed
// iteration count is an error, so corrupted input cannot silently shrink
// the report.
func parseResult(line, pkg string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false, nil
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names compare across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, fmt.Errorf("malformed benchmark line (bad iteration count %q): %q", fields[1], line)
	}
	res := Result{Name: name, Package: pkg, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPer = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true, nil
}
