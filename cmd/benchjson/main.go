// Command benchjson converts `go test -bench` text output into a JSON
// report, so CI can archive one machine-readable benchmark artifact per
// commit and the performance trajectory stays comparable across PRs.
//
// Usage:
//
//	go test -run XXX -bench . -benchtime 1x ./... | benchjson -o BENCH_<sha>.json
//
// Lines that are not benchmark results (pkg headers, PASS/ok trailers) are
// recorded as context where useful and otherwise ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsPer  float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "empty-tick-frac").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the archived document.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Parse reads `go test -bench` output into a Report.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseResult(line, pkg)
			if ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	return rep, sc.Err()
}

// parseResult parses one "BenchmarkX-8  N  v1 unit1  v2 unit2 ..." line.
func parseResult(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names compare across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Package: pkg, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPer = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}
