// Command experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index in DESIGN.md) and prints a
// paper-vs-measured report — the source of EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-full] [-out results/] [-only F4,F11]
//
// Without -full, shortened runs with identical structure are used; with
// -full the paper's 10–15 minute experiment durations and the SGP4
// propagator are used (several minutes of wall-clock time).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"celestial/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full experiment durations with SGP4")
	out := flag.String("out", "results", "directory for figure/series artifacts (empty disables)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. F4,F11)")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	flag.Parse()

	opts := experiments.Options{Full: *full, OutDir: *out}

	type entry struct {
		id  string
		run func(experiments.Options) (experiments.Report, error)
	}
	all := []entry{
		{"F1", experiments.Fig1},
		{"F3", experiments.Fig3},
		{"F4", experiments.Fig4},
		{"F5", experiments.Fig5},
		{"F6", experiments.Fig6},
		{"F7/F8", experiments.Fig7And8},
		{"T-cost", experiments.CostTable},
		{"T-calc", experiments.CalcTime},
		{"T-acc", experiments.NetemQuantization},
		{"T-base", experiments.ProcessingDelayModelReport},
		{"F10", experiments.Fig10},
		{"F11", experiments.Fig11},
	}
	if *ablations {
		all = append(all,
			entry{"A-shells", experiments.AblationShellCount},
			entry{"A-model", experiments.AblationKeplerVsSGP4},
			entry{"A-netem", experiments.AblationImpairments},
			entry{"A-faults", experiments.AblationFaults},
		)
	}

	var filter map[string]bool
	if *only != "" {
		filter = map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			filter[strings.TrimSpace(id)] = true
		}
	}

	failures := 0
	for _, e := range all {
		if filter != nil && !filter[e.id] {
			continue
		}
		begin := time.Now()
		rep, err := e.run(opts)
		if err != nil {
			log.Printf("experiment %s failed: %v", e.id, err)
			failures++
			continue
		}
		status := "REPRODUCED"
		if !rep.Pass {
			status = "DIVERGED"
			failures++
		}
		fmt.Printf("== %s — %s [%s, %v]\n", rep.ID, rep.Title, status, time.Since(begin).Round(time.Millisecond))
		for _, line := range rep.Lines {
			fmt.Printf("   %s\n", line)
		}
		for _, a := range rep.Artifacts {
			fmt.Printf("   artifact: %s\n", a)
		}
		fmt.Println()
	}
	if failures > 0 {
		fmt.Printf("%d experiment(s) diverged or failed\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments reproduced the paper's claims")
}
