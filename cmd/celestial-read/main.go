// Command celestial-read runs read replicas of the information service:
// read-only servers that follow a coordinator's (or another replica's)
// /diff stream and serve the identical /v1 route table from their own
// cache, so read capacity scales horizontally with zero added coordinator
// load.
//
// Usage:
//
//	celestial-read -upstream http://coordinator:8080 -listen :8090
//	celestial-read -upstream http://coordinator:8080 -listen :8090 -replicas 3
//	celestial-read -upstream ... -listen :8090 -http-auth secret -http-rate 100:200
//
// With -replicas N, N in-process replicas are served on consecutive ports
// starting at -listen (an in-process multi-replica smoke deployment; real
// deployments run one process per host). Each replica follows the
// upstream independently over the compact binary diff framing, reconnects
// with backoff when the stream drops, and resyncs from the upstream's
// head when its cursor falls off the upstream's retention ring — replica
// responses are byte-identical to the upstream's at every generation.
//
// The same HTTP policy middleware as the coordinator's server wraps every
// replica: -http-auth and -http-rate guard the replica's own clients, and
// -upstream-auth presents a bearer token to a guarded upstream.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"celestial/internal/httpapi/middleware"
	"celestial/internal/readpath"
)

func main() {
	upstream := flag.String("upstream", "", "base URL of the upstream information server (e.g. http://127.0.0.1:8080)")
	listen := flag.String("listen", ":8090", "TCP address the first replica serves on; replica i serves on port+i")
	replicas := flag.Int("replicas", 1, "number of in-process replicas (consecutive ports from -listen)")
	upstreamAuth := flag.String("upstream-auth", "", "bearer token presented on upstream requests")
	httpAuth := flag.String("http-auth", "", "bearer token required on this replica's requests (empty disables auth)")
	httpRate := flag.String("http-rate", "", "per-client rate limit, \"<rps>\" or \"<rps>:<burst>\" (empty disables)")
	httpLog := flag.Bool("http-log", false, "log one line per request")
	retention := flag.Int("retention", 0, "generations of diff frames retained for this replica's own /diff subscribers (0: upstream default)")
	reconnect := flag.Duration("reconnect", time.Second, "wait between upstream reconnect attempts")
	flag.Parse()

	if *upstream == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *replicas < 1 {
		log.Fatalf("celestial-read: -replicas %d: want at least 1", *replicas)
	}
	rate, burst, err := middleware.ParseRate(*httpRate)
	if err != nil {
		log.Fatalf("celestial-read: -http-rate: %v", err)
	}
	host, portStr, err := net.SplitHostPort(*listen)
	if err != nil {
		log.Fatalf("celestial-read: -listen %q: %v", *listen, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatalf("celestial-read: -listen %q: non-numeric port", *listen)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for i := 0; i < *replicas; i++ {
		r, err := readpath.New(readpath.Options{
			Upstream:      *upstream,
			UpstreamAuth:  *upstreamAuth,
			Retention:     *retention,
			ReconnectWait: *reconnect,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatalf("celestial-read: %v", err)
		}
		addr := net.JoinHostPort(host, strconv.Itoa(port+i))
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatalf("celestial-read: listener %s: %v", addr, err)
		}
		defer ln.Close()
		mw := []middleware.Middleware{middleware.Recover(log.Printf)}
		if *httpLog {
			mw = append(mw, middleware.AccessLog(log.Printf))
		}
		mw = append(mw, middleware.TokenAuth(*httpAuth), middleware.RateLimit(rate, burst))
		h := middleware.Chain(r, mw...)
		go func() {
			if err := http.Serve(ln, h); err != nil && ctx.Err() == nil {
				log.Printf("celestial-read: http server %s: %v", addr, err)
			}
		}()
		go func(i int) {
			if err := r.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("celestial-read: replica %d follow loop: %v", i, err)
			}
		}(i)
		log.Printf("replica %d: serving http://%s/v1/info, following %s", i, ln.Addr(), *upstream)
	}

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "celestial-read: shutting down")
}
