// Command celestial runs a testbed from a TOML configuration file, like
// the original Celestial coordinator binary: it builds the constellation,
// boots the machines, runs the update loop for the configured duration,
// and optionally serves the testbed DNS and the HTTP information API on
// real sockets for interactive exploration.
//
// Usage:
//
//	celestial -config testbed.toml [-progress 30s] [-dns :5353] [-http :8080] [-wall]
//	celestial -scenario run.toml [-horizon 10s] [-report out.json] [-http :8080]
//	celestial ... -http :8080 [-http-auth token] [-http-rate rps[:burst]] [-http-log]
//	celestial -scenario run.toml -checkpoint run.ckpt [-checkpoint-every 5] [-resume]
//	celestial -scenario run.toml -agents-listen :7700 -agents 4 [-agents-barrier 2s]
//	celestial ... -agents-listen :7700 [-agents-token T] [-agents-cert crt.pem -agents-key key.pem]
//
// Without -wall the emulation runs in virtual time (a 10-minute experiment
// finishes in seconds); with -wall it advances in real time so external
// clients can interact with the DNS and HTTP endpoints while satellites
// move.
//
// The HTTP information API serves its routes under /v1 (with unversioned
// aliases) and can be wrapped in deployment middleware: -http-auth
// requires a bearer token, -http-rate applies a per-client token-bucket
// rate limit, and -http-log emits access logs. Scale the read path with
// cmd/celestial-read replicas following this process's /v1/diff stream.
//
// With -scenario, a declarative scenario file (see internal/scenario) is
// executed instead: the testbed, seeded traffic workloads and scripted
// timeline events it describes run to the horizon in virtual time, and the
// machine-readable run report is written to -report (default stdout). Two
// runs of the same scenario produce byte-identical reports. -http also
// works in scenario mode: the information service (including the
// GET /diff server-sent event stream) serves concurrently with the run,
// so external tools can watch link and activity deltas as the scenario
// executes.
//
// -agents-listen serves the host-agent wire protocol (see
// internal/hostlink and cmd/celestial-agent): remote agent processes
// attach as digest-verified replica followers of their shard's topology
// feed, with -agents holding the start until a fleet has attached and
// -agents-barrier bounding how long each tick waits for acks. Agents
// that attach with -apply additionally run the authoritative commit
// protocol: the coordinator proposes each generation's apply, the agent
// executes it through the shared apply engine, and the result digests
// are compared before the generation is committed. Remote agents never
// touch virtual state, so the run report stays byte-identical to a
// single-process run; at the end of the run every attached agent's final
// ack is verified against the coordinator's digest chain and any
// divergence fails the process. -agents-token demands a bearer token in
// every agent's Hello frame and -agents-cert/-agents-key serve the
// listener over TLS; both default off so loopback and CI runs stay
// plaintext.
//
// -checkpoint persists a crash-safe snapshot of the run state at tick
// boundaries (atomic write: temp file, fsync, rename). After a crash — or
// a scripted one via -crash-after-ticks — rerunning with -resume replays
// the run deterministically from the epoch, verifies the replayed state
// against the checkpoint field for field, and continues to the horizon;
// the resumed report is byte-identical to an uninterrupted run's.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"celestial"
	"celestial/internal/bbox"
	"celestial/internal/httpapi"
	"celestial/internal/httpapi/middleware"
	"celestial/internal/scenario"
)

// apiChain composes the deployment's HTTP policy middleware around the
// information API: panic recovery always, then (innermost-first as
// configured) access logging, bearer-token auth and per-client rate
// limiting. The same chain wraps the coordinator here and the read
// replicas in celestial-read.
func apiChain(h http.Handler, auth, rateSpec string, accessLog bool) http.Handler {
	rate, burst, err := middleware.ParseRate(rateSpec)
	if err != nil {
		log.Fatalf("celestial: -http-rate: %v", err)
	}
	mw := []middleware.Middleware{middleware.Recover(log.Printf)}
	if accessLog {
		mw = append(mw, middleware.AccessLog(log.Printf))
	}
	mw = append(mw, middleware.TokenAuth(auth), middleware.RateLimit(rate, burst))
	return middleware.Chain(h, mw...)
}

func main() {
	configPath := flag.String("config", "", "path to the TOML testbed configuration")
	scenarioPath := flag.String("scenario", "", "path to a TOML scenario file (overrides -config mode)")
	horizon := flag.Duration("horizon", 0, "truncate the scenario horizon (scenario mode only; a no-op when the scenario is already shorter)")
	reportPath := flag.String("report", "", "write the scenario run report to this file (default stdout)")
	checkpointPath := flag.String("checkpoint", "", "persist a crash-safe run checkpoint to this file at tick boundaries (scenario mode only)")
	checkpointEvery := flag.Int("checkpoint-every", 1, "checkpoint period in ticks")
	resume := flag.Bool("resume", false, "resume a killed run from the -checkpoint file: replay deterministically, verify against the checkpoint, continue")
	crashAfter := flag.Int("crash-after-ticks", 0, "exit hard after this many ticks, after checkpoint persistence (crash/resume testing)")
	progress := flag.Duration("progress", 30*time.Second, "virtual-time interval between progress reports")
	dnsAddr := flag.String("dns", "", "UDP address to serve testbed DNS on (e.g. :5353)")
	httpAddr := flag.String("http", "", "TCP address to serve the HTTP info API on (e.g. :8080)")
	httpAuth := flag.String("http-auth", "", "bearer token required on info API requests (empty disables auth)")
	httpRate := flag.String("http-rate", "", "per-client info API rate limit, \"<rps>\" or \"<rps>:<burst>\" (empty disables)")
	httpLog := flag.Bool("http-log", false, "log one line per info API request")
	agentsListen := flag.String("agents-listen", "", "TCP address to serve the host-agent wire protocol on (e.g. :7700; scenario mode only)")
	agentsWait := flag.Int("agents", 0, "wait for this many celestial-agent connections before starting the run (requires -agents-listen)")
	agentsBarrier := flag.Duration("agents-barrier", 2*time.Second, "per-tick wall-clock budget for attached agents to ack the new generation")
	agentsCert := flag.String("agents-cert", "", "serve the agent listener over TLS with this certificate (requires -agents-key)")
	agentsKey := flag.String("agents-key", "", "private key for -agents-cert")
	agentsToken := flag.String("agents-token", "", "bearer token agents must present in their Hello frame (empty disables auth; plaintext loopback runs stay allowed)")
	wall := flag.Bool("wall", false, "advance in wall-clock time instead of virtual time")
	flag.Parse()

	if *scenarioPath != "" {
		runScenario(scenarioOpts{
			path:            *scenarioPath,
			horizon:         *horizon,
			reportPath:      *reportPath,
			httpAddr:        *httpAddr,
			httpAuth:        *httpAuth,
			httpRate:        *httpRate,
			httpLog:         *httpLog,
			checkpointPath:  *checkpointPath,
			checkpointEvery: *checkpointEvery,
			resume:          *resume,
			crashAfter:      *crashAfter,
			agentsListen:    *agentsListen,
			agentsWait:      *agentsWait,
			agentsBarrier:   *agentsBarrier,
			agentsCert:      *agentsCert,
			agentsKey:       *agentsKey,
			agentsToken:     *agentsToken,
		})
		return
	}
	if *agentsListen != "" || *agentsWait > 0 {
		log.Fatal("celestial: -agents-listen/-agents require -scenario mode")
	}
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := celestial.ParseConfigFile(*configPath)
	if err != nil {
		log.Fatalf("celestial: %v", err)
	}
	tb, err := celestial.New(cfg)
	if err != nil {
		log.Fatalf("celestial: %v", err)
	}

	if *dnsAddr != "" {
		conn, err := net.ListenPacket("udp", *dnsAddr)
		if err != nil {
			log.Fatalf("celestial: dns listener: %v", err)
		}
		defer conn.Close()
		go func() {
			if err := tb.ServeDNS(conn); err != nil {
				log.Printf("celestial: dns server: %v", err)
			}
		}()
		log.Printf("serving testbed DNS on %s (try: dig @%s 0.0.celestial)",
			conn.LocalAddr(), conn.LocalAddr())
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("celestial: http listener: %v", err)
		}
		defer ln.Close()
		h := apiChain(tb.API(), *httpAuth, *httpRate, *httpLog)
		go func() {
			if err := http.Serve(ln, h); err != nil {
				log.Printf("celestial: http server: %v", err)
			}
		}()
		log.Printf("serving info API on http://%s/v1/info", ln.Addr())
	}

	if err := tb.Start(); err != nil {
		log.Fatalf("celestial: %v", err)
	}
	log.Printf("testbed %q: %d satellites in %d shell(s), %d ground stations, %d host(s)",
		cfg.Name, cfg.TotalSatellites(), len(cfg.Shells), len(cfg.GroundStations), cfg.Hosts)
	log.Printf("epoch %s, duration %v, update resolution %v",
		cfg.Epoch.Format(time.RFC3339), cfg.Duration, cfg.Resolution)

	// Resource estimation, the §3.3 helper: Celestial "helps the user
	// configure their bounding box in a manner that makes sure that
	// available resources meet the demand from the emulation".
	if cfg.BoundingBox != celestial.WholeEarth {
		sat := bbox.MachineSize{VCPUs: cfg.Compute.VCPUs, MemoryMiB: cfg.Compute.MemMiB}
		gst := sat
		est := bbox.EstimateResources(cfg.BoundingBox, cfg.TotalSatellites(),
			sat, len(cfg.GroundStations), gst)
		log.Printf("bounding box %v covers %.1f%% of Earth: expect ≈%d active satellites, plan for %d vCPUs / %d MiB",
			cfg.BoundingBox, 100*cfg.BoundingBox.AreaFraction(),
			est.ExpectedActive, est.VCPUs, est.MemoryMiB)
	}

	report := func() {
		st := tb.State()
		if st == nil {
			return
		}
		active := st.ActiveCount()
		delivered, dropped := tb.Network().Stats()
		fmt.Printf("t=%6.0fs  active=%5d/%d  links=%6d  delivered=%d dropped=%d\n",
			tb.ElapsedSeconds(), active, len(st.Active), len(st.Links), delivered, dropped)
	}

	report()
	step := *progress
	if step <= 0 || step > cfg.Duration {
		step = cfg.Duration
	}
	for tb.ElapsedSeconds() < cfg.Duration.Seconds() {
		if *wall {
			time.Sleep(step)
		}
		remaining := cfg.Duration - time.Duration(tb.ElapsedSeconds()*float64(time.Second))
		if step > remaining {
			step = remaining
		}
		if err := tb.Run(step); err != nil {
			log.Fatalf("celestial: %v", err)
		}
		report()
	}
	log.Printf("experiment complete at t=%.0fs", tb.ElapsedSeconds())
}

// scenarioOpts bundles the scenario-mode flags.
type scenarioOpts struct {
	path            string
	horizon         time.Duration
	reportPath      string
	httpAddr        string
	httpAuth        string
	httpRate        string
	httpLog         bool
	checkpointPath  string
	checkpointEvery int
	resume          bool
	crashAfter      int
	agentsListen    string
	agentsWait      int
	agentsBarrier   time.Duration
	agentsCert      string
	agentsKey       string
	agentsToken     string
}

// runScenario executes a declarative scenario file and writes its run
// report, optionally serving the information service alongside the run,
// checkpointing the run state at tick boundaries, and resuming a killed
// run from its checkpoint.
func runScenario(o scenarioOpts) {
	sc, err := scenario.ParseFile(o.path)
	if err != nil {
		log.Fatalf("celestial: %v", err)
	}
	if o.horizon > 0 && o.horizon < sc.Horizon {
		if err := sc.Truncate(o.horizon); err != nil {
			log.Fatalf("celestial: %v", err)
		}
	}
	r, err := scenario.NewRunner(sc)
	if err != nil {
		log.Fatalf("celestial: %v", err)
	}
	if o.httpAddr != "" {
		ln, err := net.Listen("tcp", o.httpAddr)
		if err != nil {
			log.Fatalf("celestial: http listener: %v", err)
		}
		defer ln.Close()
		h := apiChain(httpapi.New(r.Coordinator()), o.httpAuth, o.httpRate, o.httpLog)
		go func() {
			if err := http.Serve(ln, h); err != nil {
				log.Printf("celestial: http server: %v", err)
			}
		}()
		log.Printf("serving info API on http://%s/v1/info (diff stream: /v1/diff?since=0)", ln.Addr())
	}
	// Multi-host mode: serve the host-agent wire protocol, optionally wait
	// for a fleet of celestial-agent processes to attach, and hold each
	// tick until attached agents ack it. None of this touches virtual
	// state — remote agents are digest-verified followers — so the run
	// report stays byte-identical to a single-process run.
	var barrierHook func(tick int) error
	if o.agentsToken != "" {
		// The token is a deployment secret, not a scenario property:
		// layer it over the scenario's hosts configuration by rebuilding
		// the fan-out tier before Start.
		opts := r.Coordinator().FanoutOptions()
		opts.Token = o.agentsToken
		if err := r.Coordinator().ConfigureFanout(opts); err != nil {
			log.Fatalf("celestial: %v", err)
		}
	}
	fo := r.Coordinator().Fanout()
	if o.agentsListen != "" {
		ln, err := net.Listen("tcp", o.agentsListen)
		if err != nil {
			log.Fatalf("celestial: agent listener: %v", err)
		}
		defer ln.Close()
		if o.agentsCert != "" || o.agentsKey != "" {
			cert, err := tls.LoadX509KeyPair(o.agentsCert, o.agentsKey)
			if err != nil {
				log.Fatalf("celestial: -agents-cert/-agents-key: %v", err)
			}
			ln = tls.NewListener(ln, &tls.Config{Certificates: []tls.Certificate{cert}})
			log.Printf("agent listener speaks TLS (cert %s)", o.agentsCert)
		}
		go func() {
			if err := fo.Serve(ln); err != nil {
				log.Printf("celestial: agent server: %v", err)
			}
		}()
		log.Printf("serving host-agent protocol on %s (%d shards)", ln.Addr(), fo.Shards())
		if o.agentsWait > 0 {
			log.Printf("waiting for %d agent(s) to attach", o.agentsWait)
			for fo.ConnectedAgents() < o.agentsWait {
				time.Sleep(50 * time.Millisecond)
			}
			log.Printf("%d agent(s) attached", fo.ConnectedAgents())
		}
		barrierHook = func(int) error {
			// Detached agents never stall the run; they resync from the
			// retention ring (or a snapshot) when they return.
			fo.WaitRemotes(o.agentsBarrier)
			return nil
		}
		defer fo.Close()
	} else if o.agentsWait > 0 {
		log.Fatal("celestial: -agents requires -agents-listen")
	}

	cfg := sc.Config
	log.Printf("scenario %q (seed %d): %d satellites in %d shell(s), %d ground stations, %d flow(s), %d event(s)",
		sc.Name, sc.Seed, cfg.TotalSatellites(), len(cfg.Shells), len(cfg.GroundStations),
		len(sc.Flows), len(sc.Events))
	log.Printf("horizon %v, update resolution %v", sc.Horizon, cfg.Resolution)

	runOpts := scenario.RunOptions{
		CheckpointPath:  o.checkpointPath,
		CheckpointEvery: o.checkpointEvery,
	}
	if o.resume {
		if o.checkpointPath == "" {
			log.Fatal("celestial: -resume requires -checkpoint")
		}
		cp, err := scenario.LoadCheckpoint(o.checkpointPath)
		if err != nil {
			log.Fatalf("celestial: %v", err)
		}
		runOpts.Resume = cp
		log.Printf("resuming from checkpoint at tick %d (t=%vs): replaying prefix and verifying", cp.Tick, cp.SimS)
	}
	runOpts.TickHook = barrierHook
	if o.crashAfter > 0 {
		if o.checkpointPath == "" {
			log.Fatal("celestial: -crash-after-ticks requires -checkpoint")
		}
		runOpts.TickHook = func(tick int) error {
			if barrierHook != nil {
				_ = barrierHook(tick)
			}
			if tick >= o.crashAfter {
				// A hard exit, not a clean unwind: the checkpoint on
				// disk must carry the resume on its own.
				log.Printf("crashing at tick %d as requested", tick)
				os.Exit(3)
			}
			return nil
		}
	}
	rep, err := r.RunWith(runOpts)
	if err != nil {
		log.Fatalf("celestial: %v", err)
	}
	if o.agentsListen != "" {
		// The distributed run's proof of equivalence: every attached agent
		// must have acked the final generation with the coordinator's own
		// chain digest. A divergent replica is a hard failure, not a log
		// line — the CI multihost job relies on this exit code.
		fo.WaitRemotes(o.agentsBarrier)
		if err := fo.VerifyRemotes(); err != nil {
			log.Fatalf("celestial: remote verification failed: %v", err)
		}
		log.Printf("verified %d attached agent(s) against the digest chain", fo.ConnectedAgents())
	}
	log.Printf("run complete: %d ticks, %d/%d messages delivered/dropped, %d active satellites at end",
		rep.Ticks.Ticks, rep.Network.Delivered, rep.Network.Dropped, r.ActiveSatellites())
	out := os.Stdout
	if o.reportPath != "" {
		f, err := os.Create(o.reportPath)
		if err != nil {
			log.Fatalf("celestial: %v", err)
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		log.Fatalf("celestial: %v", err)
	}
}
