// Command satgen generates constellation data: shell summaries and
// synthesized two-line element sets (TLEs) for the preset constellations or
// a TOML configuration. The generated TLEs drive the same SGP4 code path
// as element sets downloaded from a NORAD database, so they can be fed to
// any external SGP4 tooling for cross-validation.
//
// Usage:
//
//	satgen -preset starlink            # shell summary for Starlink phase I
//	satgen -preset iridium -tle        # print all 66 Iridium TLEs
//	satgen -config testbed.toml -tle   # TLEs for a configured constellation
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"celestial"
	"celestial/internal/geom"
	"celestial/internal/orbit"
	"celestial/internal/tle"
)

func main() {
	preset := flag.String("preset", "", `preset constellation: "starlink", "starlink-gen2" or "iridium"`)
	configPath := flag.String("config", "", "TOML configuration to read shells from")
	printTLE := flag.Bool("tle", false, "print synthesized TLEs instead of a summary")
	flag.Parse()

	var shells []orbit.ShellConfig
	epoch := celestial.DefaultEpoch
	switch {
	case *preset == "starlink":
		shells = celestial.StarlinkPhase1(celestial.ModelSGP4)
	case *preset == "starlink-gen2":
		shells = celestial.StarlinkGen2(celestial.ModelSGP4)
	case *preset == "iridium":
		shells = []orbit.ShellConfig{celestial.Iridium(celestial.ModelSGP4)}
	case *configPath != "":
		cfg, err := celestial.ParseConfigFile(*configPath)
		if err != nil {
			log.Fatalf("satgen: %v", err)
		}
		for _, s := range cfg.Shells {
			shells = append(shells, s.ShellConfig)
		}
		epoch = cfg.Epoch
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *printTLE {
		year, doy := yearDoy(epoch)
		emitTLEs(shells, year, doy)
		return
	}
	fmt.Printf("%-14s %7s %7s %9s %12s %7s %9s\n",
		"shell", "planes", "sats", "total", "altitude", "incl", "period")
	total := 0
	for _, s := range shells {
		fmt.Printf("%-14s %7d %7d %9d %9.0f km %6.1f° %5.1f min\n",
			s.Name, s.Planes, s.SatsPerPlane, s.Size(), s.AltitudeKm,
			s.InclinationDeg, 1440/tle.MeanMotionFromAltitude(s.AltitudeKm))
		total += s.Size()
	}
	fmt.Printf("%-14s %7s %7s %9d\n", "total", "", "", total)
}

// yearDoy converts a time to the (year, fractional day-of-year) encoding
// TLE epochs use.
func yearDoy(e time.Time) (int, float64) {
	e = e.UTC()
	jd := geom.JulianDate(e.Year(), int(e.Month()), e.Day(), e.Hour(), e.Minute(), float64(e.Second()))
	jan1 := geom.JulianDate(e.Year(), 1, 1, 0, 0, 0)
	return e.Year(), jd - jan1 + 1
}

func emitTLEs(shells []orbit.ShellConfig, year int, doy float64) {
	id := 1
	for _, s := range shells {
		mm := tle.MeanMotionFromAltitude(s.AltitudeKm)
		arc := s.ArcDeg
		if arc == 0 {
			arc = 360
		}
		for p := 0; p < s.Planes; p++ {
			raan := arc * float64(p) / float64(s.Planes)
			for k := 0; k < s.SatsPerPlane; k++ {
				ma := 360 * float64(k) / float64(s.SatsPerPlane)
				name := fmt.Sprintf("%s-P%d-S%d", s.Name, p, k)
				l1, l2 := tle.Synthesize(tle.Elements{
					Name: name, NoradID: id,
					EpochYear: year, EpochDay: doy,
					InclinationDeg: s.InclinationDeg, RAANDeg: raan,
					Eccentricity: s.Eccentricity, MeanAnomalyDeg: ma,
					MeanMotion: mm,
				})
				fmt.Printf("%s\n%s\n%s\n", name, l1, l2)
				id++
			}
		}
	}
}
