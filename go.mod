module celestial

go 1.22
